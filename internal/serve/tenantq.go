package serve

// Tenant-aware admission. When the server is configured with tenants
// (schedd -tenants), every /v1/compare and /v1/sweep request must name
// its tenant in the X-Tenant header, and admission stops being one
// shared FIFO: each tenant gets its own bounded wait queue (the
// admission budget) and free execution slots are granted by weighted
// fair queueing — the same virtual-time discipline the array-level
// interleaver (internal/tenant) uses for compute slices, applied here
// to execution slots. A tenant posting faster than its budget drains is
// shed with a per-tenant 429 whose Retry-After reflects the actual
// backlog; other tenants' queues are untouched, so one hot tenant can
// no longer starve the rest out of the admission queue entirely.
//
// The non-tenant configuration is byte-for-byte the old behavior: no
// header requirement, one shared queue, the same 429s.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"cds/internal/rescache"
	"cds/internal/scherr"
)

// TenantHeader names the request header carrying the tenant ID when the
// server runs in multi-tenant mode.
const TenantHeader = "X-Tenant"

// TenantSpec declares one tenant of the service: its stable ID, its
// weight in the fair-share slot granting, and its admission budget (how
// many of its requests may wait for a slot before the next one is shed).
type TenantSpec struct {
	ID     string
	Weight int // fair-share weight; defaulted to 1
	Budget int // max queued requests; defaulted to the server's Queue
}

// ParseTenants parses the -tenants flag grammar: semicolon-separated
// tenants, each "id" or "id:key=val,key=val" with keys "weight" and
// "budget".
//
//	video:weight=3,budget=4;radar:weight=1;batch:budget=2
func ParseTenants(s string) ([]TenantSpec, error) {
	var specs []TenantSpec
	seen := map[string]bool{}
	for _, ent := range strings.Split(s, ";") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		spec := TenantSpec{ID: ent}
		if i := strings.IndexByte(ent, ':'); i >= 0 {
			spec.ID = ent[:i]
			for _, kv := range strings.Split(ent[i+1:], ",") {
				kv = strings.TrimSpace(kv)
				if kv == "" {
					continue
				}
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("serve: tenant %q: %q is not key=value", spec.ID, kv)
				}
				n, err := strconv.Atoi(val)
				if err != nil || n < 1 {
					return nil, fmt.Errorf("serve: tenant %q: %s must be a positive integer, got %q", spec.ID, key, val)
				}
				switch key {
				case "weight":
					spec.Weight = n
				case "budget":
					spec.Budget = n
				default:
					return nil, fmt.Errorf("serve: tenant %q: unknown key %q (want weight or budget)", spec.ID, key)
				}
			}
		}
		if spec.ID == "" {
			return nil, fmt.Errorf("serve: tenant entry %q has an empty id", ent)
		}
		if seen[spec.ID] {
			return nil, fmt.Errorf("serve: duplicate tenant id %q", spec.ID)
		}
		seen[spec.ID] = true
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("serve: no tenants in %q", s)
	}
	return specs, nil
}

// UnknownTenantError is the 400 verdict: the request named no tenant,
// or one the server was not configured with.
type UnknownTenantError struct{ ID string }

func (e *UnknownTenantError) Error() string {
	if e.ID == "" {
		return "request names no tenant (missing " + TenantHeader + " header)"
	}
	return fmt.Sprintf("unknown tenant %q", e.ID)
}

// TenantBudgetError is the per-tenant 429 verdict: the tenant's
// admission budget is exhausted. Queued carries the total backlog
// across all tenants, which sizes the Retry-After hint.
type TenantBudgetError struct {
	ID     string
	Budget int
	Queued int
}

func (e *TenantBudgetError) Error() string {
	return fmt.Sprintf("tenant %q admission budget exhausted (%d queued)", e.ID, e.Budget)
}

// tenantWaiter is one request waiting in a tenant's FIFO. ready closes
// when a slot is granted; granted is guarded by the queue mutex.
type tenantWaiter struct {
	ready   chan struct{}
	granted bool
}

// tenantLane is one tenant's admission state: its FIFO of waiters and
// its virtual-time position in the fair-share granting.
type tenantLane struct {
	spec     TenantSpec
	fifo     []*tenantWaiter
	vtime    float64
	inflight int
	admitted int64
	shed     int64
}

// tenantQueue grants a fixed pool of execution slots across per-tenant
// FIFOs by weighted fair queueing: each grant advances the lane's
// virtual time by 1/weight, and free slots always go to the eligible
// lane with the minimum virtual time (ties by configuration order). A
// lane waking from idle is seeded to the minimum active virtual time so
// banked idle credit cannot starve the others.
type tenantQueue struct {
	mu     sync.Mutex
	free   int // execution slots not currently granted
	queued int // waiters across every lane
	lanes  map[string]*tenantLane
	order  []string // configuration order, the dispatch tie-break
}

func newTenantQueue(workers, defaultBudget int, specs []TenantSpec) *tenantQueue {
	q := &tenantQueue{free: workers, lanes: make(map[string]*tenantLane, len(specs))}
	for _, spec := range specs {
		if spec.Weight < 1 {
			spec.Weight = 1
		}
		if spec.Budget < 1 {
			spec.Budget = defaultBudget
		}
		q.lanes[spec.ID] = &tenantLane{spec: spec}
		q.order = append(q.order, spec.ID)
	}
	return q
}

// known reports whether id names a configured tenant.
func (q *tenantQueue) known(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	_, ok := q.lanes[id]
	return ok
}

// admit blocks until the tenant is granted an execution slot, the
// tenant's budget rejects the request, or ctx ends. On success the
// returned release must be called exactly once.
func (q *tenantQueue) admit(ctx context.Context, id string) (release func(), err error) {
	q.mu.Lock()
	l, ok := q.lanes[id]
	if !ok {
		q.mu.Unlock()
		return nil, &UnknownTenantError{ID: id}
	}
	if len(l.fifo) >= l.spec.Budget {
		l.shed++
		qd := q.queued
		q.mu.Unlock()
		return nil, &TenantBudgetError{ID: id, Budget: l.spec.Budget, Queued: qd}
	}
	w := &tenantWaiter{ready: make(chan struct{})}
	if len(l.fifo) == 0 && l.inflight == 0 {
		// Waking from idle: start from the busy lanes' minimum virtual
		// time, not from the stale position banked while idle.
		if v, ok := q.minActiveVtime(l); ok && l.vtime < v {
			l.vtime = v
		}
	}
	l.fifo = append(l.fifo, w)
	q.queued++
	q.dispatch()
	q.mu.Unlock()

	select {
	case <-w.ready:
		return func() { q.release(l) }, nil
	case <-ctx.Done():
		q.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: give the slot straight back.
			q.mu.Unlock()
			q.release(l)
			return nil, scherr.Canceled(ctx.Err())
		}
		for i, cand := range l.fifo {
			if cand == w {
				l.fifo = append(l.fifo[:i], l.fifo[i+1:]...)
				q.queued--
				break
			}
		}
		q.mu.Unlock()
		return nil, scherr.Canceled(ctx.Err())
	}
}

// minActiveVtime returns the minimum virtual time among lanes with work
// (queued or in flight), excluding l.
func (q *tenantQueue) minActiveVtime(except *tenantLane) (float64, bool) {
	min, found := 0.0, false
	for _, id := range q.order {
		l := q.lanes[id]
		if l == except || (len(l.fifo) == 0 && l.inflight == 0) {
			continue
		}
		if !found || l.vtime < min {
			min, found = l.vtime, true
		}
	}
	return min, found
}

// dispatch (mu held) hands free slots to the minimum-vtime lanes.
func (q *tenantQueue) dispatch() {
	for q.free > 0 {
		var best *tenantLane
		for _, id := range q.order {
			l := q.lanes[id]
			if len(l.fifo) == 0 {
				continue
			}
			if best == nil || l.vtime < best.vtime {
				best = l
			}
		}
		if best == nil {
			return
		}
		w := best.fifo[0]
		best.fifo = best.fifo[1:]
		q.queued--
		q.free--
		best.inflight++
		best.admitted++
		best.vtime += 1 / float64(best.spec.Weight)
		w.granted = true
		close(w.ready)
	}
}

func (q *tenantQueue) release(l *tenantLane) {
	q.mu.Lock()
	l.inflight--
	q.free++
	q.dispatch()
	q.mu.Unlock()
}

// depth reports the current total backlog and the summed budgets (the
// tenant-mode queue depth/capacity on /readyz).
func (q *tenantQueue) depth() (queued, capacity int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, l := range q.lanes {
		capacity += l.spec.Budget
	}
	return q.queued, capacity
}

// TenantQueueStat is one tenant's admission counters, as reported on
// /metrics.
type TenantQueueStat struct {
	ID       string
	Weight   int
	Budget   int
	Depth    int
	Inflight int
	Admitted int64
	Shed     int64
}

// stats snapshots every lane in configuration order.
func (q *tenantQueue) stats() []TenantQueueStat {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]TenantQueueStat, 0, len(q.order))
	for _, id := range q.order {
		l := q.lanes[id]
		out = append(out, TenantQueueStat{
			ID:       id,
			Weight:   l.spec.Weight,
			Budget:   l.spec.Budget,
			Depth:    len(l.fifo),
			Inflight: l.inflight,
			Admitted: l.admitted,
			Shed:     l.shed,
		})
	}
	return out
}

// checkTenant enforces the tenant header on a request before any work
// (including the cache fast path) happens for it. ok=false means the
// 400 has been written. Outside tenant mode it admits everything.
func (s *Server) checkTenant(w http.ResponseWriter, r *http.Request) bool {
	if s.tq == nil {
		return true
	}
	if id := r.Header.Get(TenantHeader); !s.tq.known(id) {
		writeJSONError(w, http.StatusBadRequest, (&UnknownTenantError{ID: id}).Error(), "unknown_tenant")
		return false
	}
	return true
}

// admitTenant is the tenant-mode arm of admit: per-tenant budget, then
// a weighted-fair wait for a slot.
func (s *Server) admitTenant(w http.ResponseWriter, r *http.Request) (func(), bool) {
	release, err := s.tq.admit(r.Context(), r.Header.Get(TenantHeader))
	if err == nil {
		return release, true
	}
	var unknown *UnknownTenantError
	var budget *TenantBudgetError
	switch {
	case errors.As(err, &unknown):
		writeJSONError(w, http.StatusBadRequest, err.Error(), "unknown_tenant")
	case errors.As(err, &budget):
		s.shed.Add(1)
		// The hint is the backlog's expected drain time: the whole fleet
		// of workers chews through Queued requests ahead of this tenant's
		// next chance, so one second plus backlog-over-workers.
		w.Header().Set("Retry-After", strconv.Itoa(1+budget.Queued/s.cfg.Workers))
		writeJSONError(w, http.StatusTooManyRequests, err.Error(), "tenant_budget")
	default:
		s.writeErr(w, err)
	}
	return nil, false
}

// handleMetrics renders the plain-text counters: server admission,
// result-cache effectiveness (rescache.Snapshot) and, in tenant mode,
// the per-tenant queue state.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "schedd_served_total %d\n", s.served.Load())
	fmt.Fprintf(w, "schedd_shed_total %d\n", s.shed.Load())
	fmt.Fprintf(w, "schedd_cache_hits_total %d\n", s.cacheHits.Load())
	fmt.Fprintf(w, "schedd_peer_cache_fills_total %d\n", s.peerHits.Load())
	fmt.Fprintf(w, "schedd_panics_total %d\n", s.panics.Load())

	caches := rescache.Snapshot()
	names := make([]string, 0, len(caches))
	for name := range caches {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := caches[name]
		fmt.Fprintf(w, "rescache_hits_total{cache=%q} %d\n", name, c.Hits)
		fmt.Fprintf(w, "rescache_misses_total{cache=%q} %d\n", name, c.Misses)
		fmt.Fprintf(w, "rescache_evictions_total{cache=%q} %d\n", name, c.Evictions)
		fmt.Fprintf(w, "rescache_peer_fills_total{cache=%q} %d\n", name, c.PeerFills)
		fmt.Fprintf(w, "rescache_entries{cache=%q} %d\n", name, c.Entries)
	}

	if s.tq != nil {
		for _, st := range s.tq.stats() {
			fmt.Fprintf(w, "tenant_queue_depth{tenant=%q} %d\n", st.ID, st.Depth)
			fmt.Fprintf(w, "tenant_inflight{tenant=%q} %d\n", st.ID, st.Inflight)
			fmt.Fprintf(w, "tenant_admitted_total{tenant=%q} %d\n", st.ID, st.Admitted)
			fmt.Fprintf(w, "tenant_shed_total{tenant=%q} %d\n", st.ID, st.Shed)
			fmt.Fprintf(w, "tenant_weight{tenant=%q} %d\n", st.ID, st.Weight)
			fmt.Fprintf(w, "tenant_budget{tenant=%q} %d\n", st.ID, st.Budget)
		}
	}
}
