package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"cds"
	"cds/internal/scherr"
)

func TestParseTenants(t *testing.T) {
	got, err := ParseTenants("video:weight=3,budget=4;radar;batch:budget=2")
	if err != nil {
		t.Fatal(err)
	}
	want := []TenantSpec{
		{ID: "video", Weight: 3, Budget: 4},
		{ID: "radar"},
		{ID: "batch", Budget: 2},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ParseTenants = %+v, want %+v", got, want)
	}

	for _, bad := range []string{
		"", ";;", "a;a", "a:weight=0", "a:weight=x", "a:speed=3", "a:weight", ":weight=1",
	} {
		if _, err := ParseTenants(bad); err == nil {
			t.Errorf("ParseTenants(%q) accepted", bad)
		}
	}
}

// tenantServer builds a tenant-mode server whose compare backend blocks
// until release closes, so tests can fill slots and queues on purpose.
func tenantServer(workers int, tenants []TenantSpec, release chan struct{}, started chan string) *Server {
	return New(Config{
		Workers: workers,
		Queue:   8,
		Tenants: tenants,
		Compare: func(ctx context.Context, pa cds.Arch, part *cds.Part) (*cds.Comparison, error) {
			if started != nil {
				started <- "go"
			}
			select {
			case <-release:
			case <-ctx.Done():
				return nil, scherr.Canceled(ctx.Err())
			}
			return &cds.Comparison{DS: &cds.Result{}}, nil
		},
	})
}

func postTenant(t *testing.T, h http.Handler, path, tenant, body string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestTenantUnknown400: in tenant mode, a request naming no tenant — or
// one the server was not configured with — is a 400 before any work,
// on both compare and sweep.
func TestTenantUnknown400(t *testing.T) {
	s := tenantServer(1, []TenantSpec{{ID: "video"}}, nil, nil)
	for _, tc := range []struct{ path, tenant string }{
		{"/v1/compare", ""},
		{"/v1/compare", "ghost"},
		{"/v1/sweep", ""},
		{"/v1/sweep", "ghost"},
	} {
		w := postTenant(t, s.Handler(), tc.path, tc.tenant, `{"workload":"MPEG"}`)
		if w.Code != http.StatusBadRequest {
			t.Fatalf("%s tenant=%q = %d, want 400: %s", tc.path, tc.tenant, w.Code, w.Body.String())
		}
		if e := decode[errorBody](t, w); e.Class != "unknown_tenant" {
			t.Fatalf("%s tenant=%q class = %q, want unknown_tenant", tc.path, tc.tenant, e.Class)
		}
	}
}

// TestTenantBudgetShed429 pins the per-tenant admission contract: a
// tenant whose budget is exhausted is shed with 429, class
// tenant_budget, and a Retry-After sized to the actual backlog
// (1 + queued/workers) — while another tenant's queue stays open.
func TestTenantBudgetShed429(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 8)
	s := tenantServer(1, []TenantSpec{
		{ID: "video", Weight: 2, Budget: 1},
		{ID: "radar", Weight: 1, Budget: 1},
	}, release, started)

	codes := make(chan int, 4)
	serveOne := func(tenant string) {
		w := postTenant(t, s.Handler(), "/v1/compare", tenant, `{"workload":"MPEG"}`)
		codes <- w.Code
	}
	go serveOne("video") // occupies the single slot
	<-started
	go serveOne("video") // fills video's budget of 1
	waitDepth := func(want int) {
		t.Helper()
		for i := 0; i < 500; i++ {
			if d, _ := s.tq.depth(); d == want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		d, _ := s.tq.depth()
		t.Fatalf("queue depth = %d, want %d", d, want)
	}
	waitDepth(1)

	// Budget exhausted: the next video request is shed with the backlog
	// hint — 1 queued request over 1 worker → Retry-After 2.
	w := postTenant(t, s.Handler(), "/v1/compare", "video", `{"workload":"MPEG"}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-budget request = %d, want 429: %s", w.Code, w.Body.String())
	}
	if ra := w.Header().Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want 2 (1 + 1 queued / 1 worker)", ra)
	}
	if e := decode[errorBody](t, w); e.Class != "tenant_budget" {
		t.Fatalf("class = %q, want tenant_budget", e.Class)
	}
	if s.Shed() != 1 {
		t.Fatalf("Shed() = %d, want 1", s.Shed())
	}

	// radar's own budget is untouched by video's shedding: its request
	// queues instead of bouncing.
	go serveOne("radar")
	waitDepth(2)

	// Shedding never starved the admitted work.
	close(release)
	for i := 0; i < 3; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("admitted request %d finished %d, want 200", i, code)
		}
	}
}

// TestQueueFullRetryAfter pins the non-tenant shed hint exactly: the
// shared-queue overload 429 always advises a 1-second backoff.
func TestQueueFullRetryAfter(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 4)
	s := New(Config{
		Workers: 1,
		Queue:   1,
		Compare: func(ctx context.Context, pa cds.Arch, part *cds.Part) (*cds.Comparison, error) {
			started <- "go"
			select {
			case <-release:
			case <-ctx.Done():
				return nil, scherr.Canceled(ctx.Err())
			}
			return &cds.Comparison{DS: &cds.Result{}}, nil
		},
	})
	defer close(release)

	codes := make(chan int, 2)
	go func() { codes <- post(t, s.Handler(), "/v1/compare", `{"workload":"MPEG"}`).Code }()
	<-started
	go func() { codes <- post(t, s.Handler(), "/v1/compare", `{"workload":"MPEG"}`).Code }()
	for i := 0; i < 500 && s.waiters.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}

	w := post(t, s.Handler(), "/v1/compare", `{"workload":"MPEG"}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("overload request = %d, want 429", w.Code)
	}
	if ra := w.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After = %q, want 1", ra)
	}
	if e := decode[errorBody](t, w); e.Class != "overload" {
		t.Fatalf("class = %q, want overload", e.Class)
	}
}

// TestTenantWeightedDequeue drives the fair-share slot granting
// deterministically: one slot, tenants a (weight 3) and b (weight 1),
// six a-waiters and two b-waiters queued behind an a occupant. Granting
// one at a time must interleave 3:1 by virtual time — a b a a a b a a —
// not drain a's FIFO first.
func TestTenantWeightedDequeue(t *testing.T) {
	q := newTenantQueue(1, 8, []TenantSpec{{ID: "a", Weight: 3}, {ID: "b", Weight: 1}})
	ctx := context.Background()
	rel0, err := q.admit(ctx, "a") // occupies the slot
	if err != nil {
		t.Fatal(err)
	}

	type grant struct {
		id      string
		release func()
	}
	grants := make(chan grant, 8)
	enqueue := func(id string, n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			before, _ := q.depth()
			go func() {
				r, err := q.admit(ctx, id)
				if err != nil {
					t.Errorf("admit %s: %v", id, err)
					return
				}
				grants <- grant{id, r}
			}()
			for j := 0; j < 500; j++ {
				if d, _ := q.depth(); d > before {
					break
				}
				time.Sleep(time.Millisecond)
			}
		}
	}
	enqueue("a", 6)
	enqueue("b", 2)

	rel0()
	var order []string
	for i := 0; i < 8; i++ {
		g := <-grants
		order = append(order, g.id)
		g.release()
	}
	want := []string{"a", "b", "a", "a", "a", "b", "a", "a"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("grant order %v, want %v", order, want)
	}
}

// TestMetricsEndpoint: /metrics reports admission counters, the
// rescache snapshot and per-tenant queue state as plain text.
func TestMetricsEndpoint(t *testing.T) {
	release := make(chan struct{})
	close(release)
	s := tenantServer(2, []TenantSpec{{ID: "video", Weight: 2}, {ID: "radar"}}, release, nil)

	if w := postTenant(t, s.Handler(), "/v1/compare", "video", `{"workload":"MPEG"}`); w.Code != http.StatusOK {
		t.Fatalf("compare = %d: %s", w.Code, w.Body.String())
	}

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics = %d", w.Code)
	}
	body := w.Body.String()
	for _, want := range []string{
		"schedd_served_total 1",
		"rescache_hits_total{cache=",
		`tenant_admitted_total{tenant="video"} 1`,
		`tenant_admitted_total{tenant="radar"} 0`,
		`tenant_weight{tenant="video"} 2`,
		`tenant_queue_depth{tenant="video"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}
