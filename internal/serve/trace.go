package serve

import (
	"bytes"
	"encoding/json"
	"expvar"
	"net/http"
	"sync"

	"cds"
	"cds/internal/sim"
	"cds/internal/trace"
)

// Tracing in the serving layer: /v1/compare?trace=1 answers with
// per-scheduler timeline analytics inline (utilization, overlap
// efficiency, critical-path decomposition), and a sampled, byte-budgeted
// in-memory ring keeps the most recent traced comparisons for
// GET /debug/traces — post-hoc inspection of a live daemon without
// unbounded growth. Timelines are re-derived from the deterministic
// schedules, so cached comparison answers trace exactly like fresh ones.

// TraceRingStats is the counters block of a /debug/traces answer.
type TraceRingStats struct {
	// TraceRequests counts /v1/compare answers that carried analytics.
	TraceRequests int64 `json:"trace_requests"`
	// Recorded/Evicted/Oversize are the ring's admission counters.
	Recorded int64 `json:"recorded"`
	Evicted  int64 `json:"evicted"`
	Oversize int64 `json:"oversize"`
	// Entries and Bytes gauge the ring's current residency.
	Entries int `json:"entries"`
	Bytes   int `json:"bytes"`
}

// TraceEntry is one recorded comparison in a /debug/traces answer.
type TraceEntry struct {
	Label string `json:"label"`
	Seq   int64  `json:"seq"`
	// Analytics summarizes the best schedule's timeline (CDS when it
	// survived, else the last surviving scheduler's).
	Analytics trace.Analytics `json:"analytics"`
	// Chrome is the full Chrome trace of every surviving scheduler's
	// timeline, included only under ?full=1.
	Chrome json.RawMessage `json:"chrome,omitempty"`
}

// TracesResponse is the JSON answer of GET /debug/traces.
type TracesResponse struct {
	Stats   TraceRingStats `json:"stats"`
	Entries []TraceEntry   `json:"entries"`
}

// The "schedd_traces" expvar snapshots every server's ring counters.
// Publish panics on duplicate names, so servers enter a registry and a
// single sync.Once-guarded Func reads it — the same pattern as the
// "rescache" expvar (multiple servers per process, tests constructing
// servers repeatedly).
var (
	tracePublishOnce sync.Once
	traceRegistryMu  sync.Mutex
	traceRegistry    []*Server
)

func registerTraceExpvar(s *Server) {
	traceRegistryMu.Lock()
	traceRegistry = append(traceRegistry, s)
	traceRegistryMu.Unlock()
	tracePublishOnce.Do(func() {
		expvar.Publish("schedd_traces", expvar.Func(func() any {
			traceRegistryMu.Lock()
			defer traceRegistryMu.Unlock()
			out := make([]TraceRingStats, 0, len(traceRegistry))
			for _, srv := range traceRegistry {
				out = append(out, srv.traceStats())
			}
			return out
		}))
	})
}

func (s *Server) traceStats() TraceRingStats {
	st := s.traces.Stats()
	return TraceRingStats{
		TraceRequests: s.traceReqs.Load(),
		Recorded:      st.Recorded,
		Evicted:       st.Evicted,
		Oversize:      st.Oversize,
		Entries:       st.Entries,
		Bytes:         st.Bytes,
	}
}

// maybeTrace derives the per-scheduler timeline analytics for a
// comparison answer when the request asked for them, and (sampled)
// records the full trace into the debug ring. Tracing is re-simulation
// of the surviving schedules — deterministic and cheap relative to
// scheduling — so it works identically for cached and fresh answers.
func (s *Server) maybeTrace(want bool, target string, cmp *cds.Comparison) []trace.Analytics {
	if !want || cmp == nil {
		return nil
	}
	var tls []*trace.Timeline
	for _, res := range []*cds.Result{cmp.Basic, cmp.DS, cmp.CDS} {
		if res == nil {
			continue
		}
		_, tl, err := sim.Trace(res.Schedule)
		if err != nil {
			// A schedule that was produced but does not simulate is a bug
			// elsewhere; the comparison answer must not fail over tracing.
			s.cfg.Logf("serve: trace %s: %v", target, err)
			continue
		}
		tls = append(tls, tl)
	}
	if len(tls) == 0 {
		return nil
	}
	out := make([]trace.Analytics, len(tls))
	for i, tl := range tls {
		out[i] = trace.Analyze(tl)
	}
	s.traceReqs.Add(1)

	// Sampled ring admission: every Nth traced answer keeps its full
	// Chrome payload for /debug/traces.
	every := int64(s.cfg.TraceSampleEvery)
	if n := s.traceSeen.Add(1); (n-1)%every == 0 {
		var buf bytes.Buffer
		if err := trace.WriteChrome(&buf, tls...); err == nil {
			s.traces.Add(trace.RingEntry{
				Label:     target,
				Analytics: out[len(out)-1],
				Chrome:    buf.Bytes(),
			})
		}
	}
	return out
}

// handleTraces serves the bounded ring of recently traced comparisons:
// analytics per entry, plus the full Chrome payloads under ?full=1.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	full := r.URL.Query().Get("full") == "1"
	snap := s.traces.Snapshot()
	resp := TracesResponse{
		Stats:   s.traceStats(),
		Entries: make([]TraceEntry, 0, len(snap)),
	}
	for _, e := range snap {
		te := TraceEntry{Label: e.Label, Seq: e.Seq, Analytics: e.Analytics}
		if full {
			te.Chrome = json.RawMessage(e.Chrome)
		}
		resp.Entries = append(resp.Entries, te)
	}
	writeJSON(w, http.StatusOK, resp)
}
