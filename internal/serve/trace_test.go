package serve

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cds/internal/trace"
)

func getTraces(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestCompareWithTrace(t *testing.T) {
	s := New(Config{})
	w := post(t, s.Handler(), "/v1/compare?trace=1", `{"workload":"MPEG"}`)
	if w.Code != http.StatusOK {
		t.Fatalf("compare = %d: %s", w.Code, w.Body.String())
	}
	resp := decode[CompareResponse](t, w)
	if len(resp.Traces) != 3 {
		t.Fatalf("%d trace analytics, want 3 (basic/ds/cds)", len(resp.Traces))
	}
	labels := []string{"basic", "ds", "cds"}
	for i, a := range resp.Traces {
		if a.Label != labels[i] {
			t.Errorf("trace %d labeled %q, want %q", i, a.Label, labels[i])
		}
		if a.Makespan <= 0 || a.RCUtilPct <= 0 || a.DMAUtilPct <= 0 {
			t.Errorf("trace %d has empty analytics: %+v", i, a)
		}
		if sum := a.Path.Compute + a.Path.ExposedCtx + a.Path.ExposedLoad +
			a.Path.ExposedStore + a.Path.Dead; sum != a.Makespan {
			t.Errorf("trace %d decomposition %d != makespan %d", i, sum, a.Makespan)
		}
	}
	// The analytics totals must agree with the scheduler results served
	// in the same answer.
	if resp.Traces[0].Makespan != resp.Basic.TotalCycles ||
		resp.Traces[2].Makespan != resp.CDS.TotalCycles {
		t.Errorf("trace makespans %d/%d != results %d/%d",
			resp.Traces[0].Makespan, resp.Traces[2].Makespan,
			resp.Basic.TotalCycles, resp.CDS.TotalCycles)
	}
	// The overlap story orders the schedulers.
	if !(resp.Traces[2].OverlapPct > resp.Traces[0].OverlapPct) {
		t.Errorf("cds overlap %.1f%% not above basic %.1f%%",
			resp.Traces[2].OverlapPct, resp.Traces[0].OverlapPct)
	}

	// Without ?trace=1 the answer carries no analytics.
	w = post(t, s.Handler(), "/v1/compare", `{"workload":"MPEG"}`)
	if resp := decode[CompareResponse](t, w); len(resp.Traces) != 0 {
		t.Errorf("untraced answer carries %d analytics", len(resp.Traces))
	}
}

func TestCompareTraceCachedAnswer(t *testing.T) {
	s := New(Config{})
	// Warm the result cache without tracing...
	if w := post(t, s.Handler(), "/v1/compare", `{"workload":"E1"}`); w.Code != http.StatusOK {
		t.Fatalf("warmup = %d", w.Code)
	}
	// ...then ask the cached answer for analytics.
	w := post(t, s.Handler(), "/v1/compare?trace=1", `{"workload":"E1"}`)
	resp := decode[CompareResponse](t, w)
	if !resp.Cached {
		t.Skip("result caching disabled in this configuration")
	}
	if len(resp.Traces) != 3 {
		t.Fatalf("cached answer has %d trace analytics, want 3", len(resp.Traces))
	}
	if resp.Traces[2].Makespan != resp.CDS.TotalCycles {
		t.Errorf("cached trace makespan %d != result %d", resp.Traces[2].Makespan, resp.CDS.TotalCycles)
	}
}

func TestDebugTracesRing(t *testing.T) {
	s := New(Config{})
	// Ring starts empty.
	w := getTraces(t, s.Handler(), "/debug/traces")
	if w.Code != http.StatusOK {
		t.Fatalf("/debug/traces = %d", w.Code)
	}
	if resp := decode[TracesResponse](t, w); len(resp.Entries) != 0 {
		t.Fatalf("fresh ring has %d entries", len(resp.Entries))
	}

	post(t, s.Handler(), "/v1/compare?trace=1", `{"workload":"MPEG"}`)
	post(t, s.Handler(), "/v1/compare?trace=1", `{"workload":"E1"}`)
	resp := decode[TracesResponse](t, getTraces(t, s.Handler(), "/debug/traces"))
	if len(resp.Entries) != 2 {
		t.Fatalf("%d ring entries, want 2", len(resp.Entries))
	}
	if resp.Entries[0].Label != "MPEG" || resp.Entries[1].Label != "E1" {
		t.Errorf("labels %q/%q", resp.Entries[0].Label, resp.Entries[1].Label)
	}
	if resp.Stats.TraceRequests != 2 || resp.Stats.Recorded != 2 || resp.Stats.Bytes <= 0 {
		t.Errorf("stats %+v", resp.Stats)
	}
	// Analytics come back but Chrome payloads need ?full=1.
	if resp.Entries[0].Analytics.Makespan <= 0 {
		t.Error("entry missing analytics")
	}
	if len(resp.Entries[0].Chrome) != 0 {
		t.Error("chrome payload served without ?full=1")
	}

	full := decode[TracesResponse](t, getTraces(t, s.Handler(), "/debug/traces?full=1"))
	if len(full.Entries[0].Chrome) == 0 {
		t.Fatal("?full=1 did not include the chrome payload")
	}
	if _, err := trace.ValidateChrome(strings.NewReader(string(full.Entries[0].Chrome))); err != nil {
		t.Errorf("ring chrome payload invalid: %v", err)
	}
}

// TestDebugTracesBounded pins the no-unbounded-growth guarantee: a tiny
// byte budget keeps the ring within bounds no matter how many traced
// requests arrive, while analytics keep flowing inline.
func TestDebugTracesBounded(t *testing.T) {
	s := New(Config{TraceRingEntries: 4, TraceRingBytes: 512})
	for i := 0; i < 12; i++ {
		w := post(t, s.Handler(), "/v1/compare?trace=1", `{"workload":"E1"}`)
		if w.Code != http.StatusOK {
			t.Fatalf("compare %d = %d", i, w.Code)
		}
		if resp := decode[CompareResponse](t, w); len(resp.Traces) == 0 {
			t.Fatalf("request %d lost its inline analytics", i)
		}
		st := decode[TracesResponse](t, getTraces(t, s.Handler(), "/debug/traces")).Stats
		if st.Entries > 4 || st.Bytes > 512 {
			t.Fatalf("ring exceeded bounds after %d requests: %+v", i, st)
		}
	}
	st := decode[TracesResponse](t, getTraces(t, s.Handler(), "/debug/traces")).Stats
	if st.TraceRequests != 12 {
		t.Errorf("trace_requests = %d, want 12", st.TraceRequests)
	}
	// An E1 triple-trace is bigger than 512 B, so every admission was
	// either evicted-to-fit or rejected oversize — both bounded.
	if st.Recorded+st.Oversize != 12 {
		t.Errorf("recorded %d + oversize %d != 12", st.Recorded, st.Oversize)
	}
}

func TestTraceSampling(t *testing.T) {
	s := New(Config{TraceSampleEvery: 3})
	for i := 0; i < 7; i++ {
		w := post(t, s.Handler(), "/v1/compare?trace=1", `{"workload":"E1"}`)
		if resp := decode[CompareResponse](t, w); len(resp.Traces) == 0 {
			t.Fatalf("request %d: sampling must not drop inline analytics", i)
		}
	}
	st := decode[TracesResponse](t, getTraces(t, s.Handler(), "/debug/traces")).Stats
	// Requests 1, 4 and 7 are kept.
	if st.Recorded != 3 {
		t.Errorf("recorded %d of 7 with sample-every=3, want 3", st.Recorded)
	}
	if st.TraceRequests != 7 {
		t.Errorf("trace_requests = %d, want 7", st.TraceRequests)
	}
}

// TestTraceExpvar checks the "schedd_traces" expvar publishes through
// the once-guarded registry: constructing many servers (as tests do)
// must not panic on duplicate expvar names, and the var must reflect
// ring activity.
func TestTraceExpvar(t *testing.T) {
	a := New(Config{})
	b := New(Config{}) // second server in one process: must not panic
	_ = b
	post(t, a.Handler(), "/v1/compare?trace=1", `{"workload":"E1"}`)

	v := expvar.Get("schedd_traces")
	if v == nil {
		t.Fatal("schedd_traces expvar not published")
	}
	out := fmt.Sprint(v)
	if !strings.Contains(out, "trace_requests") {
		t.Errorf("expvar output missing counters: %s", out)
	}
}
