package sim

import (
	"testing"

	"cds/internal/core"
	"cds/internal/workloads"
)

// BenchmarkRun measures the timing simulator on the MPEG schedule.
func BenchmarkRun(b *testing.B) {
	e := workloads.MPEG()
	s, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunSerial measures the no-overlap variant.
func BenchmarkRunSerial(b *testing.B) {
	e := workloads.MPEG()
	s, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunSerial(s); err != nil {
			b.Fatal(err)
		}
	}
}
