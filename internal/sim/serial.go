package sim

import (
	"fmt"
	"io"

	"cds/internal/core"
)

// RunSerial simulates the schedule WITHOUT the double-buffered overlap: a
// machine with a single Frame Buffer set (or a naive runtime) must finish
// each visit's loads before computing and drain its stores afterwards,
// with nothing concurrent. The gap between RunSerial and Run quantifies
// what M1's two FB sets buy; the overlap ablation benchmark reports it.
func RunSerial(s *core.Schedule) (*Result, error) {
	if s == nil {
		return nil, fmt.Errorf("sim: nil schedule")
	}
	p := s.Arch
	if err := p.Validate(); err != nil {
		return nil, err
	}
	res := &Result{
		VisitStart: make([]int, len(s.Visits)),
		VisitEnd:   make([]int, len(s.Visits)),
	}
	now := 0
	for vi := range s.Visits {
		v := &s.Visits[vi]
		ctx := p.ContextCycles(v.CtxWords)
		res.CtxCycles += ctx
		res.CtxWords += v.CtxWords
		now += ctx
		for _, m := range v.Loads {
			c := p.DataCycles(m.Bytes)
			res.DataCycles += c
			res.LoadBytes += m.Bytes
			now += c
		}
		res.StallCycles += ctx // everything before compute is exposed
		res.VisitStart[vi] = now
		now += v.ComputeCycles
		res.ComputeCycles += v.ComputeCycles
		res.VisitEnd[vi] = now
		for _, m := range v.Stores {
			c := p.DataCycles(m.Bytes)
			res.DataCycles += c
			res.StoreBytes += m.Bytes
			now += c
		}
	}
	res.TotalCycles = now
	return res, nil
}

// OverlapGain returns the percentage of execution time the double-buffered
// overlap saves for this schedule.
func OverlapGain(s *core.Schedule) (float64, error) {
	serial, err := RunSerial(s)
	if err != nil {
		return 0, err
	}
	overlapped, err := Run(s)
	if err != nil {
		return 0, err
	}
	return Improvement(serial, overlapped), nil
}

// WriteTimeline renders a per-visit Gantt-style view of the overlapped
// execution: when each visit computed and how long its transfers took.
func WriteTimeline(w io.Writer, s *core.Schedule, r *Result) {
	if len(r.VisitStart) != len(s.Visits) {
		fmt.Fprintln(w, "timeline: result does not match schedule")
		return
	}
	total := r.TotalCycles
	if total == 0 {
		total = 1
	}
	const cols = 60
	fmt.Fprintf(w, "total %d cycles; one column = %d cycles\n", r.TotalCycles, (total+cols-1)/cols)
	for vi := range s.Visits {
		v := &s.Visits[vi]
		start := r.VisitStart[vi] * cols / total
		end := r.VisitEnd[vi] * cols / total
		if end <= start {
			end = start + 1
		}
		bar := make([]byte, cols)
		for i := range bar {
			switch {
			case i >= start && i < end:
				bar[i] = '#'
			default:
				bar[i] = '.'
			}
		}
		fmt.Fprintf(w, "c%d b%-3d %s  [%d..%d)\n", v.Cluster, v.Block, bar, r.VisitStart[vi], r.VisitEnd[vi])
	}
	fmt.Fprintf(w, "RC busy %.0f%%, DMA busy %.0f%%, stalls %d cycles\n",
		100*float64(r.ComputeCycles)/float64(total),
		100*float64(r.DMABusy())/float64(total),
		r.StallCycles)
}
