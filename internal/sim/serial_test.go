package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"cds/internal/core"
	"cds/internal/workloads"
)

func TestRunSerialNeverFaster(t *testing.T) {
	for _, e := range workloads.All() {
		for _, sched := range []core.Scheduler{core.Basic{}, core.DataScheduler{}, core.CompleteDataScheduler{}} {
			s, err := sched.Schedule(e.Arch, e.Part)
			if err != nil {
				t.Fatalf("%s/%s: %v", e.Name, sched.Name(), err)
			}
			serial, err := RunSerial(s)
			if err != nil {
				t.Fatal(err)
			}
			overlapped, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if serial.TotalCycles < overlapped.TotalCycles {
				t.Errorf("%s/%s: serial %d beats overlapped %d",
					e.Name, sched.Name(), serial.TotalCycles, overlapped.TotalCycles)
			}
			// Volumes are identical; only timing differs.
			if serial.LoadBytes != overlapped.LoadBytes ||
				serial.StoreBytes != overlapped.StoreBytes ||
				serial.CtxWords != overlapped.CtxWords ||
				serial.ComputeCycles != overlapped.ComputeCycles {
				t.Errorf("%s/%s: volumes differ between serial and overlapped", e.Name, sched.Name())
			}
			// Serial total is exactly compute + all DMA.
			if want := serial.ComputeCycles + serial.DMABusy(); serial.TotalCycles != want {
				t.Errorf("%s/%s: serial total %d != compute+dma %d",
					e.Name, sched.Name(), serial.TotalCycles, want)
			}
		}
	}
}

func TestOverlapGainPositive(t *testing.T) {
	e := workloads.MPEG()
	s, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
	if err != nil {
		t.Fatal(err)
	}
	gain, err := OverlapGain(s)
	if err != nil {
		t.Fatal(err)
	}
	if gain <= 0 {
		t.Errorf("overlap gain = %.1f%%, want positive (double buffering must pay)", gain)
	}
	if gain >= 100 {
		t.Errorf("overlap gain = %.1f%%, impossible", gain)
	}
}

func TestRunSerialErrors(t *testing.T) {
	if _, err := RunSerial(nil); err == nil {
		t.Error("nil schedule accepted")
	}
	s := handSchedule()
	s.Arch.BusBytes = 0
	if _, err := RunSerial(s); err == nil {
		t.Error("invalid arch accepted")
	}
}

func TestWriteTimeline(t *testing.T) {
	s := handSchedule()
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	WriteTimeline(&b, s, r)
	out := b.String()
	for _, want := range []string{"total", "c0 b0", "c1 b0", "#", "RC busy"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// Mismatched result is reported, not panicking.
	var b2 strings.Builder
	WriteTimeline(&b2, s, &Result{})
	if !strings.Contains(b2.String(), "does not match") {
		t.Error("mismatch not reported")
	}
}

func TestWriteTrace(t *testing.T) {
	e := workloads.MPEG()
	s, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteTrace(&b, s, r); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Cat   string `json:"cat"`
			Phase string `json:"ph"`
			TS    int    `json:"ts"`
			Dur   int    `json:"dur"`
			TID   int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var compute, dma int
	maxEnd := 0
	for _, ev := range doc.TraceEvents {
		if ev.Phase != "X" {
			continue
		}
		if ev.TS < 0 || ev.Dur < 0 {
			t.Fatalf("negative interval: %+v", ev)
		}
		switch ev.Cat {
		case "compute":
			compute += ev.Dur
		case "context", "load", "store":
			dma += ev.Dur
		}
		if end := ev.TS + ev.Dur; end > maxEnd {
			maxEnd = end
		}
	}
	if compute != r.ComputeCycles {
		t.Errorf("trace compute %d != result %d", compute, r.ComputeCycles)
	}
	if dma != r.DMABusy() {
		t.Errorf("trace DMA %d != result %d", dma, r.DMABusy())
	}
	if maxEnd != r.TotalCycles {
		t.Errorf("trace ends at %d, result says %d", maxEnd, r.TotalCycles)
	}
	// Mismatched result rejected.
	if err := WriteTrace(&strings.Builder{}, s, &Result{}); err == nil {
		t.Error("mismatched result accepted")
	}
}
