// Package sim is the event-driven timing simulator of the MorphoSys M1
// execution model the scheduling papers assume:
//
//   - the RC array computes one cluster visit at a time;
//   - the Frame Buffer is double-buffered, so the DMA may fill the other
//     set (loads and context loads for the NEXT visit) while the current
//     visit computes;
//   - data and context transfers share a single DMA channel and strictly
//     serialize;
//   - a visit's results are stored to external memory after it computes,
//     and its FB set cannot be refilled for a later visit until those
//     stores drain.
//
// The simulator consumes a core.Schedule and reports the total execution
// time plus a traffic/stall breakdown. Overlap is emergent: transfers that
// fit inside the previous visit's compute window cost no wall-clock time.
package sim

import (
	"fmt"

	"cds/internal/core"
	"cds/internal/trace"
)

// Result is the outcome of simulating one schedule.
type Result struct {
	// TotalCycles is the end-to-end execution time.
	TotalCycles int
	// ComputeCycles is the RC-array busy time (identical across
	// schedulers for the same application).
	ComputeCycles int
	// DataCycles and CtxCycles are the DMA channel busy times for data
	// and context traffic.
	DataCycles int
	CtxCycles  int
	// StallCycles is the RC-array idle time waiting for transfers.
	StallCycles int
	// LoadBytes/StoreBytes/CtxWords echo the schedule's volumes.
	LoadBytes, StoreBytes int
	CtxWords              int
	// VisitStart/VisitEnd give each visit's compute interval, for
	// inspection and tests (indexed like Schedule.Visits).
	VisitStart, VisitEnd []int
	// PrefetchCycles and PrefetchCount report the context traffic the
	// streaming executor hoisted into the previous visit's compute
	// window (RunStream with prefetch on); both are zero for the static
	// Run and for the serialized streaming baseline.
	PrefetchCycles int
	PrefetchCount  int
}

// DMABusy returns the total DMA channel busy time.
func (r *Result) DMABusy() int { return r.DataCycles + r.CtxCycles }

// Run simulates the schedule and returns the timing result.
//
// The model keeps two timelines: the RC array (compute) and the DMA
// channel. For each visit v in order:
//
//  1. the stores of the previous visit on v's FB set are drained first
//     (they must complete before the set is refilled);
//  2. v's context and data loads occupy the DMA;
//  3. v computes when both its loads are done and the RC array is free.
//
// Trailing stores after the last visit are drained at the end.
func Run(s *core.Schedule) (*Result, error) {
	return run(s, nil)
}

// RunTraced simulates the schedule while recording every DMA transfer,
// compute interval and FB set switch into rec as cycle-stamped spans.
// It is the same walk as Run — a nil recorder short-circuits every
// recording call — so traced and untraced results are identical by
// construction.
func RunTraced(s *core.Schedule, rec *trace.Recorder) (*Result, error) {
	return run(s, rec)
}

// Trace simulates the schedule and returns both the result and the
// recorded timeline, labeled by the schedule's scheduler name.
func Trace(s *core.Schedule) (*Result, *trace.Timeline, error) {
	rec := trace.NewRecorder()
	r, err := run(s, rec)
	if err != nil {
		return nil, nil, err
	}
	label := "schedule"
	if s.Scheduler != "" {
		label = s.Scheduler
	}
	return r, rec.Timeline(label, r.TotalCycles), nil
}

// run is the single simulation walk behind Run and RunTraced.
func run(s *core.Schedule, rec *trace.Recorder) (*Result, error) {
	if s == nil {
		return nil, fmt.Errorf("sim: nil schedule")
	}
	p := s.Arch
	if err := p.Validate(); err != nil {
		return nil, err
	}
	res := &Result{
		VisitStart: make([]int, len(s.Visits)),
		VisitEnd:   make([]int, len(s.Visits)),
	}

	// pendingStore[set] is the index of the visit on that FB set whose
	// stores have not been issued yet (-1 when none).
	pendingStore := map[int]int{}
	for _, v := range s.Visits {
		pendingStore[v.Set] = -1
	}

	dmaFree := 0 // next cycle the DMA channel is available
	rcFree := 0  // next cycle the RC array is available
	computeEnd := make([]int, len(s.Visits))

	// drainStores issues visit vi's stores on the DMA, no earlier than
	// the visit's compute end, one span per movement.
	drainStores := func(vi int) {
		v := &s.Visits[vi]
		start := dmaFree
		if computeEnd[vi] > start {
			start = computeEnd[vi]
		}
		for _, m := range v.Stores {
			cost := p.DataCycles(m.Bytes)
			rec.Span(trace.Span{
				Resource: trace.DMA, Kind: trace.KindStore, Name: m.Datum,
				Start: start, End: start + cost,
				Cluster: v.Cluster, Block: v.Block, Visit: vi, Set: v.Set,
				Bytes: m.Bytes,
			})
			start += cost
			res.DataCycles += cost
			res.StoreBytes += m.Bytes
		}
		dmaFree = start
	}

	prevSet := -1
	for vi := range s.Visits {
		v := &s.Visits[vi]

		// Drain the pending stores of the previous visit on this
		// set: they cannot start before that visit's compute ends,
		// and they must finish before this visit's loads overwrite
		// the set.
		if prev := pendingStore[v.Set]; prev >= 0 {
			drainStores(prev)
		}

		// Context loads (one CM load burst), then data loads.
		ctxCost := p.ContextCycles(v.CtxWords)
		rec.Span(trace.Span{
			Resource: trace.DMA, Kind: trace.KindContext,
			Start: dmaFree, End: dmaFree + ctxCost,
			Cluster: v.Cluster, Block: v.Block, Visit: vi, Set: v.Set,
			Words: v.CtxWords,
		})
		res.CtxCycles += ctxCost
		res.CtxWords += v.CtxWords
		dmaFree += ctxCost
		for _, m := range v.Loads {
			cost := p.DataCycles(m.Bytes)
			rec.Span(trace.Span{
				Resource: trace.DMA, Kind: trace.KindLoad, Name: m.Datum,
				Start: dmaFree, End: dmaFree + cost,
				Cluster: v.Cluster, Block: v.Block, Visit: vi, Set: v.Set,
				Bytes: m.Bytes,
			})
			dmaFree += cost
			res.DataCycles += cost
			res.LoadBytes += m.Bytes
		}
		transfersDone := dmaFree

		// Compute.
		start := transfersDone
		if rcFree > start {
			start = rcFree
		}
		res.StallCycles += start - rcFree
		res.VisitStart[vi] = start
		computeEnd[vi] = start + v.ComputeCycles
		res.VisitEnd[vi] = computeEnd[vi]
		res.ComputeCycles += v.ComputeCycles
		rcFree = computeEnd[vi]
		rec.Span(trace.Span{
			Resource: trace.RCArray, Kind: trace.KindCompute,
			Start: start, End: computeEnd[vi],
			Cluster: v.Cluster, Block: v.Block, Visit: vi, Set: v.Set,
		})
		if vi > 0 && v.Set != prevSet {
			rec.Mark(trace.Mark{
				Kind: trace.MarkFBSwitch, Cycle: start, Visit: vi,
				Name: fmt.Sprintf("set %d -> %d", prevSet, v.Set),
			})
		}
		prevSet = v.Set

		pendingStore[v.Set] = vi
	}

	// Drain trailing stores.
	for _, vi := range sortedPending(pendingStore) {
		drainStores(vi)
	}

	res.TotalCycles = rcFree
	if dmaFree > res.TotalCycles {
		res.TotalCycles = dmaFree
	}
	return res, nil
}

func sortedPending(pending map[int]int) []int {
	var vis []int
	for _, vi := range pending {
		if vi >= 0 {
			vis = append(vis, vi)
		}
	}
	// Store older visits first.
	for i := 0; i < len(vis); i++ {
		for j := i + 1; j < len(vis); j++ {
			if vis[j] < vis[i] {
				vis[i], vis[j] = vis[j], vis[i]
			}
		}
	}
	return vis
}

// Improvement returns the paper's metric: the relative execution-time
// improvement of a schedule over a baseline, in percent.
func Improvement(baseline, improved *Result) float64 {
	if baseline.TotalCycles == 0 {
		return 0
	}
	return 100 * float64(baseline.TotalCycles-improved.TotalCycles) / float64(baseline.TotalCycles)
}

// Compare simulates a baseline and a candidate schedule and returns both
// results plus the improvement percentage.
func Compare(baseline, candidate *core.Schedule) (base, cand *Result, improvementPct float64, err error) {
	base, err = Run(baseline)
	if err != nil {
		return nil, nil, 0, err
	}
	cand, err = Run(candidate)
	if err != nil {
		return nil, nil, 0, err
	}
	return base, cand, Improvement(base, cand), nil
}
