package sim

import (
	"testing"

	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/core"
)

// handSchedule builds a two-visit schedule with round numbers:
//
//	arch: bus 4 bytes/cycle, 4-cycle DMA setup, 4-byte context words.
//	v0 (set 0): ctx 16 words (20 cy), load 8 bytes (6 cy), compute 100,
//	            store 8 bytes (6 cy)
//	v1 (set 1): ctx 16 words (20 cy), load 8 bytes (6 cy), compute 100,
//	            store 8 bytes (6 cy)
func handSchedule() *core.Schedule {
	return &core.Schedule{
		Scheduler: "hand",
		Arch:      arch.M1(),
		Visits: []core.Visit{
			{
				Cluster: 0, Set: 0, Iters: 1,
				Loads:         []core.Movement{{Datum: "a", Bytes: 8}},
				Stores:        []core.Movement{{Datum: "r", Bytes: 8}},
				CtxWords:      16,
				ComputeCycles: 100,
			},
			{
				Cluster: 1, Set: 1, Iters: 1,
				Loads:         []core.Movement{{Datum: "b", Bytes: 8}},
				Stores:        []core.Movement{{Datum: "s", Bytes: 8}},
				CtxWords:      16,
				ComputeCycles: 100,
			},
		},
	}
}

func TestRunHandTimeline(t *testing.T) {
	res, err := Run(handSchedule())
	if err != nil {
		t.Fatal(err)
	}
	// v0: transfers 0..26 (ctx 20 + load 6); compute 26..126.
	// v1: transfers 26..52 (other set, overlaps v0 compute);
	//     compute starts at 126 (RC busy), ends 226.
	// v0 store: DMA free at 52, but waits for compute end 126: 126..132.
	// v1 store: waits compute end 226: 226..232.
	if res.VisitStart[0] != 26 || res.VisitEnd[0] != 126 {
		t.Errorf("v0 interval = %d..%d, want 26..126", res.VisitStart[0], res.VisitEnd[0])
	}
	if res.VisitStart[1] != 126 || res.VisitEnd[1] != 226 {
		t.Errorf("v1 interval = %d..%d, want 126..226", res.VisitStart[1], res.VisitEnd[1])
	}
	if res.TotalCycles != 232 {
		t.Errorf("TotalCycles = %d, want 232", res.TotalCycles)
	}
	if res.ComputeCycles != 200 {
		t.Errorf("ComputeCycles = %d, want 200", res.ComputeCycles)
	}
	if res.CtxCycles != 40 || res.DataCycles != 24 {
		t.Errorf("CtxCycles/DataCycles = %d/%d, want 40/24", res.CtxCycles, res.DataCycles)
	}
	if res.DMABusy() != 64 {
		t.Errorf("DMABusy = %d, want 64", res.DMABusy())
	}
	// v1's transfers were fully hidden by v0's compute: the only stall
	// is v0's cold start.
	if res.StallCycles != 26 {
		t.Errorf("StallCycles = %d, want 26", res.StallCycles)
	}
	if res.LoadBytes != 16 || res.StoreBytes != 16 || res.CtxWords != 32 {
		t.Errorf("volumes = %d/%d/%d, want 16/16/32", res.LoadBytes, res.StoreBytes, res.CtxWords)
	}
}

func TestRunSameSetSerializes(t *testing.T) {
	// Two visits on the SAME set: v1's loads must wait for v0's stores,
	// which wait for v0's compute. No overlap is possible.
	s := handSchedule()
	s.Visits[1].Set = 0
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	// v0: transfers 0..26, compute 26..126, store 126..132.
	// v1: transfers 132..158, compute 158..258, store 258..264.
	if res.VisitStart[1] != 158 {
		t.Errorf("v1 start = %d, want 158 (serialized)", res.VisitStart[1])
	}
	if res.TotalCycles != 264 {
		t.Errorf("TotalCycles = %d, want 264", res.TotalCycles)
	}
}

func TestRunTransferBound(t *testing.T) {
	// Tiny compute: the DMA is the bottleneck and stalls accumulate.
	s := handSchedule()
	s.Visits[0].ComputeCycles = 1
	s.Visits[1].ComputeCycles = 1
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.StallCycles == 0 {
		t.Error("expected stalls with transfer-bound visits")
	}
	if res.TotalCycles <= res.ComputeCycles {
		t.Error("total must exceed compute when transfer-bound")
	}
}

func TestRunEmptyScheduleAndErrors(t *testing.T) {
	if _, err := Run(nil); err == nil {
		t.Error("Run(nil) should fail")
	}
	bad := handSchedule()
	bad.Arch.BusBytes = 0
	if _, err := Run(bad); err == nil {
		t.Error("invalid arch should fail")
	}
	empty := &core.Schedule{Scheduler: "empty", Arch: arch.M1()}
	res, err := Run(empty)
	if err != nil || res.TotalCycles != 0 {
		t.Errorf("empty schedule: res=%+v err=%v, want 0 cycles", res, err)
	}
}

func TestImprovement(t *testing.T) {
	base := &Result{TotalCycles: 200}
	better := &Result{TotalCycles: 150}
	if got := Improvement(base, better); got != 25 {
		t.Errorf("Improvement = %v, want 25", got)
	}
	// The zero-baseline guard: a degenerate (empty) baseline must not
	// divide by zero — the improvement is defined as 0, whatever the
	// candidate did.
	if got := Improvement(&Result{}, better); got != 0 {
		t.Errorf("Improvement with zero baseline = %v, want 0", got)
	}
	if got := Improvement(&Result{}, &Result{}); got != 0 {
		t.Errorf("Improvement of empty over empty = %v, want 0", got)
	}
	// Identical results: exactly 0, not a rounding artifact.
	if got := Improvement(base, base); got != 0 {
		t.Errorf("Improvement over itself = %v, want 0", got)
	}
	// Worse schedules yield negative improvement.
	if got := Improvement(better, base); got >= 0 {
		t.Errorf("Improvement of a regression = %v, want negative", got)
	}
}

// schedulerPipeline builds the canonical pipe application (see core tests)
// and runs all three schedulers through the simulator.
func TestSchedulerOrdering(t *testing.T) {
	b := app.NewBuilder("pipe", 16).
		Datum("inA", 100).
		Datum("x", 50).
		Datum("m", 30).
		Datum("r2", 60).
		Datum("rB", 40).
		Datum("out1", 20).
		Datum("out2", 20)
	b.Kernel("k1", 48, 300).In("inA", "x").Out("m")
	b.Kernel("k2", 48, 300).In("m").Out("r2", "rB")
	b.Kernel("k3", 48, 300).In("r2").Out("out1")
	b.Kernel("k4", 48, 300).In("inA", "rB").Out("out2")
	part := app.MustPartition(b.MustBuild(), 2, 2, 1, 1)

	pa := arch.M1()
	pa.FBSetBytes = 400
	pa.CMWords = 96 // two kernels' worth: forces context thrash

	run := func(s core.Scheduler) *Result {
		t.Helper()
		sched, err := s.Schedule(pa, part)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		res, err := Run(sched)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		return res
	}
	basic := run(core.Basic{})
	ds := run(core.DataScheduler{})
	cds := run(core.CompleteDataScheduler{})

	if !(cds.TotalCycles <= ds.TotalCycles && ds.TotalCycles <= basic.TotalCycles) {
		t.Errorf("ordering broken: basic=%d ds=%d cds=%d",
			basic.TotalCycles, ds.TotalCycles, cds.TotalCycles)
	}
	if cds.TotalCycles >= basic.TotalCycles {
		t.Error("CDS must strictly beat basic on this workload")
	}
	// Compute work is scheduler-independent.
	if basic.ComputeCycles != ds.ComputeCycles || ds.ComputeCycles != cds.ComputeCycles {
		t.Errorf("compute differs: %d/%d/%d", basic.ComputeCycles, ds.ComputeCycles, cds.ComputeCycles)
	}
	// CDS moves strictly less data than DS, which moves the same as basic.
	if cds.LoadBytes >= ds.LoadBytes {
		t.Errorf("CDS loads %d, DS loads %d: retention saved nothing", cds.LoadBytes, ds.LoadBytes)
	}
	if ds.LoadBytes != basic.LoadBytes {
		t.Errorf("DS loads %d, basic loads %d: should match", ds.LoadBytes, basic.LoadBytes)
	}
	// DS reloads contexts less often than basic.
	if ds.CtxWords >= basic.CtxWords {
		t.Errorf("DS ctx words %d, basic %d: RF gave nothing", ds.CtxWords, basic.CtxWords)
	}
}

func TestCompare(t *testing.T) {
	s := handSchedule()
	s2 := handSchedule()
	s2.Visits[0].CtxWords = 0
	s2.Visits[1].CtxWords = 0
	base, cand, pct, err := Compare(s, s2)
	if err != nil {
		t.Fatal(err)
	}
	if base.TotalCycles <= cand.TotalCycles {
		t.Errorf("candidate (no ctx loads) should be faster: %d vs %d", base.TotalCycles, cand.TotalCycles)
	}
	if pct <= 0 {
		t.Errorf("improvement = %v, want positive", pct)
	}
}
