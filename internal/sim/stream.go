package sim

// The streaming execution model. The static walk in run() models the
// offline machine: every visit's transfers are known up front, so the
// DMA issues them as soon as the channel frees — overlap with the
// previous visit's compute is emergent and unconditional.
//
// An online executor does not have that luxury. Work arrives as a
// stream (each visit carries a Ready cycle — its segment's arrival
// time), and the naive executor only turns to visit v's transfers after
// visit v-1's compute completes: context and data loads serialize
// behind the previous compute window. RunStream models exactly that
// baseline, and — with Prefetch enabled — recovers the overlap where
// residency permits, following Resano et al.'s prefetch heuristic:
//
//   - FB residency: visit v's loads refill v's Frame Buffer set, so they
//     may only run under visit v-1's compute when v-1 computes out of a
//     DIFFERENT set (the double buffer);
//   - CM residency: hoisting v's context words must not evict a context
//     group the executing visit still runs under. With group-granularity
//     FIFO eviction the conservative safe condition is that v's context
//     words fit beside v-1's whole context working set
//     (v.CtxWords + GroupWords(v-1) <= CMWords).
//
// When either condition fails the executor falls back to the serialized
// baseline for that visit. Hoisted context bursts are recorded as
// trace.KindPrefetch spans; internal/verify's "prefetch" invariant
// family checks the residency conditions and the single-channel DMA
// serialization over the recorded timeline.

import (
	"fmt"

	"cds/internal/core"
	"cds/internal/trace"
)

// StreamVisit carries one visit's streaming-side inputs, parallel to
// Schedule.Visits.
type StreamVisit struct {
	// Ready is the earliest cycle the visit's DMA transfers may issue —
	// its stream segment's arrival time. 0 means known at t=0.
	Ready int
	// GroupWords is the visit's context working set: the deduplicated
	// context words of every group its kernels run under (not the words
	// actually transferred, which CM reuse may have reduced). The
	// prefetch CM-residency check reads it.
	GroupWords int
}

// StreamOpts configures one streaming simulation.
type StreamOpts struct {
	// Visits holds the per-visit streaming inputs; nil means every visit
	// is ready at t=0 with a zero context working set (which disables
	// only the CM half of the residency check when CtxWords is 0 too).
	// When non-nil its length must match the schedule's visit count.
	Visits []StreamVisit
	// Prefetch enables hoisting the next visit's transfers into the
	// current compute window where residency permits. Off, RunStream is
	// the serialized online baseline.
	Prefetch bool
}

// visit returns the streaming inputs of visit vi.
func (o *StreamOpts) visit(vi int) StreamVisit {
	if o.Visits == nil {
		return StreamVisit{}
	}
	return o.Visits[vi]
}

// RunStream simulates the schedule under the online streaming model and
// returns the timing result (PrefetchCycles/PrefetchCount report the
// hoisted context traffic).
func RunStream(s *core.Schedule, o StreamOpts) (*Result, error) {
	return runStream(s, nil, o)
}

// RunStreamTraced is RunStream recording every span into rec — the same
// walk, so traced and untraced results are identical by construction.
func RunStreamTraced(s *core.Schedule, rec *trace.Recorder, o StreamOpts) (*Result, error) {
	return runStream(s, rec, o)
}

// TraceStream simulates the schedule under the streaming model and
// returns both the result and the recorded timeline.
func TraceStream(s *core.Schedule, label string, o StreamOpts) (*Result, *trace.Timeline, error) {
	rec := trace.NewRecorder()
	r, err := runStream(s, rec, o)
	if err != nil {
		return nil, nil, err
	}
	if label == "" {
		label = "stream"
		if s.Scheduler != "" {
			label = s.Scheduler
		}
	}
	return r, rec.Timeline(label, r.TotalCycles), nil
}

// runStream is the single streaming walk behind RunStream and
// RunStreamTraced. It mirrors run()'s store-drain and compute logic; the
// difference is confined to when a visit's context and data loads may
// start (see the package comment on the model).
func runStream(s *core.Schedule, rec *trace.Recorder, o StreamOpts) (*Result, error) {
	if s == nil {
		return nil, fmt.Errorf("sim: nil schedule")
	}
	p := s.Arch
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if o.Visits != nil && len(o.Visits) != len(s.Visits) {
		return nil, fmt.Errorf("sim: stream opts carry %d visits, schedule has %d",
			len(o.Visits), len(s.Visits))
	}
	res := &Result{
		VisitStart: make([]int, len(s.Visits)),
		VisitEnd:   make([]int, len(s.Visits)),
	}

	pendingStore := map[int]int{}
	for _, v := range s.Visits {
		pendingStore[v.Set] = -1
	}

	dmaFree := 0
	rcFree := 0
	computeEnd := make([]int, len(s.Visits))

	drainStores := func(vi int) {
		v := &s.Visits[vi]
		start := dmaFree
		if computeEnd[vi] > start {
			start = computeEnd[vi]
		}
		for _, m := range v.Stores {
			cost := p.DataCycles(m.Bytes)
			rec.Span(trace.Span{
				Resource: trace.DMA, Kind: trace.KindStore, Name: m.Datum,
				Start: start, End: start + cost,
				Cluster: v.Cluster, Block: v.Block, Visit: vi, Set: v.Set,
				Bytes: m.Bytes,
			})
			start += cost
			res.DataCycles += cost
			res.StoreBytes += m.Bytes
		}
		dmaFree = start
	}

	prevSet := -1
	for vi := range s.Visits {
		v := &s.Visits[vi]

		if prev := pendingStore[v.Set]; prev >= 0 {
			drainStores(prev)
		}

		// The earliest the visit's loads could possibly issue: channel
		// free and the visit's work arrived.
		issue := dmaFree
		if r := o.visit(vi).Ready; r > issue {
			issue = r
		}
		// The online barrier: the naive executor issues visit vi's
		// transfers only after visit vi-1's compute completes. Prefetch
		// lifts the barrier when both residency conditions hold.
		hoist := vi == 0
		if vi > 0 && o.Prefetch {
			pv := &s.Visits[vi-1]
			fbOK := v.Set != pv.Set
			cmOK := v.CtxWords+o.visit(vi-1).GroupWords <= p.CMWords
			hoist = fbOK && cmOK
		}
		if !hoist && vi > 0 && computeEnd[vi-1] > issue {
			issue = computeEnd[vi-1]
		}
		prefetched := hoist && vi > 0 && issue < computeEnd[vi-1]

		// Context loads (one CM burst), then data loads, serialized on
		// the single channel.
		ctxCost := p.ContextCycles(v.CtxWords)
		kind := trace.KindContext
		if prefetched && ctxCost > 0 {
			kind = trace.KindPrefetch
			res.PrefetchCycles += ctxCost
			res.PrefetchCount++
		}
		rec.Span(trace.Span{
			Resource: trace.DMA, Kind: kind,
			Start: issue, End: issue + ctxCost,
			Cluster: v.Cluster, Block: v.Block, Visit: vi, Set: v.Set,
			Words: v.CtxWords,
		})
		res.CtxCycles += ctxCost
		res.CtxWords += v.CtxWords
		dmaFree = issue + ctxCost
		for _, m := range v.Loads {
			cost := p.DataCycles(m.Bytes)
			rec.Span(trace.Span{
				Resource: trace.DMA, Kind: trace.KindLoad, Name: m.Datum,
				Start: dmaFree, End: dmaFree + cost,
				Cluster: v.Cluster, Block: v.Block, Visit: vi, Set: v.Set,
				Bytes: m.Bytes,
			})
			dmaFree += cost
			res.DataCycles += cost
			res.LoadBytes += m.Bytes
		}
		transfersDone := dmaFree

		start := transfersDone
		if rcFree > start {
			start = rcFree
		}
		res.StallCycles += start - rcFree
		res.VisitStart[vi] = start
		computeEnd[vi] = start + v.ComputeCycles
		res.VisitEnd[vi] = computeEnd[vi]
		res.ComputeCycles += v.ComputeCycles
		rcFree = computeEnd[vi]
		rec.Span(trace.Span{
			Resource: trace.RCArray, Kind: trace.KindCompute,
			Start: start, End: computeEnd[vi],
			Cluster: v.Cluster, Block: v.Block, Visit: vi, Set: v.Set,
		})
		if vi > 0 && v.Set != prevSet {
			rec.Mark(trace.Mark{
				Kind: trace.MarkFBSwitch, Cycle: start, Visit: vi,
				Name: fmt.Sprintf("set %d -> %d", prevSet, v.Set),
			})
		}
		prevSet = v.Set

		pendingStore[v.Set] = vi
	}

	for _, vi := range sortedPending(pendingStore) {
		drainStores(vi)
	}

	res.TotalCycles = rcFree
	if dmaFree > res.TotalCycles {
		res.TotalCycles = dmaFree
	}
	return res, nil
}
