package sim

import (
	"testing"

	"cds/internal/core"
	"cds/internal/trace"
	"cds/internal/workloads"
)

// Hand numbers for handSchedule under the streaming model.
//
// Serialized baseline (prefetch off): v1's transfers wait for v0's
// compute to end at 126, so ctx 126..146, load 146..152, compute
// 152..252; the trailing stores drain 152..158 (v0, DMA already free)
// and 252..258 (v1, after its compute). Total 258.
//
// Prefetch on: v1 refills set 1 while v0 computes out of set 0 and its
// 16 context words fit the CM, so the hoist restores the static walk:
// total 232, with exactly v1's 20-cycle context burst hoisted.
func TestRunStreamHandTimeline(t *testing.T) {
	s := handSchedule()

	serial, err := RunStream(s, StreamOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if serial.TotalCycles != 258 {
		t.Errorf("serialized TotalCycles = %d, want 258", serial.TotalCycles)
	}
	if serial.VisitStart[1] != 152 || serial.VisitEnd[1] != 252 {
		t.Errorf("serialized v1 interval = %d..%d, want 152..252",
			serial.VisitStart[1], serial.VisitEnd[1])
	}
	if serial.PrefetchCycles != 0 || serial.PrefetchCount != 0 {
		t.Errorf("serialized prefetch = %d cycles/%d bursts, want none",
			serial.PrefetchCycles, serial.PrefetchCount)
	}

	pre, err := RunStream(s, StreamOpts{Prefetch: true})
	if err != nil {
		t.Fatal(err)
	}
	if pre.TotalCycles != 232 {
		t.Errorf("prefetch TotalCycles = %d, want 232 (the static walk)", pre.TotalCycles)
	}
	if pre.PrefetchCycles != 20 || pre.PrefetchCount != 1 {
		t.Errorf("prefetch = %d cycles/%d bursts, want 20/1", pre.PrefetchCycles, pre.PrefetchCount)
	}

	static, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if static.TotalCycles != pre.TotalCycles {
		t.Errorf("prefetch %d != static %d on an alternating-set schedule",
			pre.TotalCycles, static.TotalCycles)
	}
}

// Ready gates issue: a visit whose segment has not arrived may not
// start its transfers, even with the DMA idle and prefetch on.
func TestRunStreamReadyDelaysIssue(t *testing.T) {
	s := handSchedule()
	o := StreamOpts{
		Visits:   []StreamVisit{{Ready: 0}, {Ready: 500}},
		Prefetch: true,
	}
	res, tl, err := TraceStream(s, "", o)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range tl.Spans {
		if sp.Visit == 1 && sp.Resource == trace.DMA && sp.Kind != trace.KindStore && sp.Start < 500 {
			t.Errorf("visit 1 %s span starts at %d, before arrival 500", sp.Kind, sp.Start)
		}
	}
	if res.VisitStart[1] != 526 || res.TotalCycles != 632 {
		t.Errorf("v1 start/total = %d/%d, want 526/632", res.VisitStart[1], res.TotalCycles)
	}
	// The arrival is past v0's compute window, so nothing was hoisted.
	if res.PrefetchCount != 0 {
		t.Errorf("PrefetchCount = %d, want 0 (arrival after the window)", res.PrefetchCount)
	}
}

// The residency conditions individually veto the hoist: same FB set, or
// context words that no longer fit beside the running working set.
func TestRunStreamResidencyVetoes(t *testing.T) {
	t.Run("fb", func(t *testing.T) {
		s := handSchedule()
		s.Visits[1].Set = s.Visits[0].Set
		res, err := RunStream(s, StreamOpts{Prefetch: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.PrefetchCount != 0 {
			t.Errorf("PrefetchCount = %d, want 0 (same-set refill)", res.PrefetchCount)
		}
	})
	t.Run("cm", func(t *testing.T) {
		s := handSchedule()
		o := StreamOpts{
			Visits:   []StreamVisit{{GroupWords: s.Arch.CMWords}, {}},
			Prefetch: true,
		}
		res, err := RunStream(s, o)
		if err != nil {
			t.Fatal(err)
		}
		if res.PrefetchCount != 0 {
			t.Errorf("PrefetchCount = %d, want 0 (CM full)", res.PrefetchCount)
		}
		serial, err := RunStream(s, StreamOpts{Visits: o.Visits})
		if err != nil {
			t.Fatal(err)
		}
		if res.TotalCycles != serial.TotalCycles {
			t.Errorf("vetoed prefetch total %d != serialized %d", res.TotalCycles, serial.TotalCycles)
		}
	})
}

// Across the workload corpus and all three schedulers: the serialized
// online baseline is never faster than prefetch, prefetch is never
// faster than the static offline walk, and volumes are identical —
// only timing moves.
func TestRunStreamOrdering(t *testing.T) {
	for _, e := range workloads.All() {
		for _, sched := range []core.Scheduler{core.Basic{}, core.DataScheduler{}, core.CompleteDataScheduler{}} {
			s, err := sched.Schedule(e.Arch, e.Part)
			if err != nil {
				t.Fatalf("%s/%s: %v", e.Name, sched.Name(), err)
			}
			static, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			pre, err := RunStream(s, StreamOpts{Prefetch: true})
			if err != nil {
				t.Fatal(err)
			}
			serial, err := RunStream(s, StreamOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if pre.TotalCycles > serial.TotalCycles {
				t.Errorf("%s/%s: prefetch %d beats serialized %d the wrong way",
					e.Name, sched.Name(), pre.TotalCycles, serial.TotalCycles)
			}
			if static.TotalCycles > pre.TotalCycles {
				t.Errorf("%s/%s: static %d slower than streamed prefetch %d",
					e.Name, sched.Name(), static.TotalCycles, pre.TotalCycles)
			}
			if pre.LoadBytes != serial.LoadBytes || pre.StoreBytes != serial.StoreBytes ||
				pre.CtxWords != serial.CtxWords || pre.ComputeCycles != serial.ComputeCycles {
				t.Errorf("%s/%s: volumes differ between prefetch and serialized", e.Name, sched.Name())
			}
		}
	}
}

// Traced and untraced streaming walks must agree exactly, and the
// recorded timeline must tile both resource tracks and account for the
// result's busy totals.
func TestStreamTracedIdenticalToUntraced(t *testing.T) {
	for _, e := range workloads.All() {
		s, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		for _, prefetch := range []bool{false, true} {
			o := StreamOpts{Prefetch: prefetch}
			plain, err := RunStream(s, o)
			if err != nil {
				t.Fatal(err)
			}
			traced, tl, err := TraceStream(s, e.Name, o)
			if err != nil {
				t.Fatal(err)
			}
			if !resultsEqual(plain, traced) {
				t.Errorf("%s prefetch=%v: traced result differs from untraced", e.Name, prefetch)
			}
			if _, err := trace.Tile(tl); err != nil {
				t.Errorf("%s prefetch=%v: timeline does not tile: %v", e.Name, prefetch, err)
			}
			if busy := tl.BusyKind(trace.KindContext) + tl.BusyKind(trace.KindPrefetch); busy != traced.CtxCycles {
				t.Errorf("%s prefetch=%v: ctx spans %d != result %d", e.Name, prefetch, busy, traced.CtxCycles)
			}
			if busy := tl.BusyKind(trace.KindPrefetch); busy != traced.PrefetchCycles {
				t.Errorf("%s prefetch=%v: prefetch spans %d != result %d", e.Name, prefetch, busy, traced.PrefetchCycles)
			}
			if !prefetch && traced.PrefetchCycles != 0 {
				t.Errorf("%s: prefetch cycles %d recorded with prefetch off", e.Name, traced.PrefetchCycles)
			}
		}
	}
}

func TestRunStreamErrors(t *testing.T) {
	if _, err := RunStream(nil, StreamOpts{}); err == nil {
		t.Error("nil schedule accepted")
	}
	s := handSchedule()
	_, err := RunStream(s, StreamOpts{Visits: []StreamVisit{{}}})
	if err == nil {
		t.Error("mismatched stream visit count accepted")
	}
	if _, _, err := TraceStream(nil, "x", StreamOpts{}); err == nil {
		t.Error("TraceStream accepted nil schedule")
	}
	bad := handSchedule()
	bad.Arch.CMWords = 0
	if _, err := RunStream(bad, StreamOpts{}); err == nil {
		t.Error("invalid arch accepted")
	}
}

// resultsEqual compares two results field-by-field via their exported
// aggregate accessors plus the per-visit intervals (Result contains
// slices, so != on values is not usable directly).
func resultsEqual(a, b *Result) bool {
	if a.TotalCycles != b.TotalCycles || a.ComputeCycles != b.ComputeCycles ||
		a.CtxCycles != b.CtxCycles || a.DataCycles != b.DataCycles ||
		a.StallCycles != b.StallCycles || a.LoadBytes != b.LoadBytes ||
		a.StoreBytes != b.StoreBytes || a.CtxWords != b.CtxWords ||
		a.PrefetchCycles != b.PrefetchCycles || a.PrefetchCount != b.PrefetchCount {
		return false
	}
	if len(a.VisitStart) != len(b.VisitStart) {
		return false
	}
	for i := range a.VisitStart {
		if a.VisitStart[i] != b.VisitStart[i] || a.VisitEnd[i] != b.VisitEnd[i] {
			return false
		}
	}
	return true
}
