package sim

// The multi-tenant executor: one RC array and one DMA channel time-shared
// by K independent schedules. The tenant layer (internal/tenant) computes
// each application's schedule against a quota-restricted machine view and
// stitches the per-tenant cluster runs into one global emission order;
// RunTenants executes that order under exactly the single-array model of
// run(): the FB sets of DIFFERENT tenants are disjoint quota partitions,
// so only the RC array and the DMA channel are contended, and a tenant's
// own visit sequence keeps the same dependency structure it has solo.

import (
	"fmt"

	"cds/internal/arch"
	"cds/internal/core"
)

// TenantSlice addresses one contiguous run of visits of one lane's
// schedule: visits [First, First+N) of scheds[Lane]. A global emission
// order is a sequence of slices that covers every lane's visits exactly
// once, in each lane's own order — the tenant interleaver guarantees
// that and verify's fairness family re-checks it.
type TenantSlice struct {
	Lane  int `json:"lane"`
	First int `json:"first"`
	N     int `json:"n"`
}

// TenantResult is the outcome of one multi-tenant execution.
type TenantResult struct {
	// TotalCycles is the global makespan (all lanes' work and stores
	// drained).
	TotalCycles int
	// ComputeCycles/DataCycles/CtxCycles/StallCycles aggregate across
	// all lanes, with the same meaning as Result's fields.
	ComputeCycles int
	DataCycles    int
	CtxCycles     int
	StallCycles   int
	// LaneVisitStart/LaneVisitEnd give each visit's compute interval,
	// indexed [lane][visit] like the input schedules' Visits.
	LaneVisitStart [][]int
	LaneVisitEnd   [][]int
	// LaneEnd is the cycle each lane's last compute finished; LaneDone
	// additionally waits for the lane's trailing stores to drain.
	LaneEnd  []int
	LaneDone []int
	// LaneCompute is each lane's RC-array busy time.
	LaneCompute []int
	// SliceStart/SliceEnd give each emitted slice's span on the shared
	// machine (first transfer issue through last compute end), indexed
	// like the order passed to RunTenants. Fairness curves plot service
	// against SliceEnd.
	SliceStart []int
	SliceEnd   []int
}

// VisitCost prices one visit's busy cycles on the shared machine under
// p: its context-load burst, its data loads and stores, and its compute.
// The tenant interleaver charges virtual time by this cost and verify's
// fairness lag bound is stated in units of it, so both must price a
// visit identically — which is why it lives here, next to the walk that
// realizes those cycles.
func VisitCost(p arch.Params, v *core.Visit) int {
	c := v.ComputeCycles + p.ContextCycles(v.CtxWords)
	for _, m := range v.Loads {
		c += p.DataCycles(m.Bytes)
	}
	for _, m := range v.Stores {
		c += p.DataCycles(m.Bytes)
	}
	return c
}

// RunTenants executes K schedules interleaved on one machine, in the
// given slice order. scheds[i] is lane i's schedule against its own
// (quota-restricted) machine view; arrive[i] is the cycle lane i's work
// becomes available — none of its DMA transfers may issue earlier (nil
// means every lane is present at cycle 0).
//
// The walk generalizes run(): pending stores are tracked per (lane, FB
// set) — tenant quotas partition the Frame Buffer spatially, so one
// tenant's refill never waits on another tenant's stores — while the DMA
// channel and the RC array are single shared timelines. Within a lane
// the visit semantics are exactly the solo semantics: stores drain
// before the set refills, context then data loads serialize on the DMA,
// compute starts when both its transfers and the array are free.
func RunTenants(scheds []*core.Schedule, arrive []int, order []TenantSlice) (*TenantResult, error) {
	if len(scheds) == 0 {
		return nil, fmt.Errorf("sim: no tenant schedules")
	}
	for i, s := range scheds {
		if s == nil {
			return nil, fmt.Errorf("sim: lane %d: nil schedule", i)
		}
		if err := s.Arch.Validate(); err != nil {
			return nil, fmt.Errorf("sim: lane %d: %w", i, err)
		}
	}
	if arrive == nil {
		arrive = make([]int, len(scheds))
	}
	if len(arrive) != len(scheds) {
		return nil, fmt.Errorf("sim: %d arrival cycles for %d lanes", len(arrive), len(scheds))
	}
	for i, at := range arrive {
		if at < 0 {
			return nil, fmt.Errorf("sim: lane %d: negative arrival cycle %d", i, at)
		}
	}
	// The order must cover each lane's visits exactly once, in order.
	next := make([]int, len(scheds))
	for si, sl := range order {
		if sl.Lane < 0 || sl.Lane >= len(scheds) {
			return nil, fmt.Errorf("sim: slice %d: lane %d out of range", si, sl.Lane)
		}
		if sl.N < 1 {
			return nil, fmt.Errorf("sim: slice %d: empty slice", si)
		}
		if sl.First != next[sl.Lane] {
			return nil, fmt.Errorf("sim: slice %d: lane %d visits start at %d, expected %d",
				si, sl.Lane, sl.First, next[sl.Lane])
		}
		next[sl.Lane] += sl.N
		if next[sl.Lane] > len(scheds[sl.Lane].Visits) {
			return nil, fmt.Errorf("sim: slice %d: lane %d overruns its %d visits",
				si, sl.Lane, len(scheds[sl.Lane].Visits))
		}
	}
	for i, n := range next {
		if n != len(scheds[i].Visits) {
			return nil, fmt.Errorf("sim: order covers %d of lane %d's %d visits",
				n, i, len(scheds[i].Visits))
		}
	}

	res := &TenantResult{
		LaneVisitStart: make([][]int, len(scheds)),
		LaneVisitEnd:   make([][]int, len(scheds)),
		LaneEnd:        make([]int, len(scheds)),
		LaneDone:       make([]int, len(scheds)),
		LaneCompute:    make([]int, len(scheds)),
		SliceStart:     make([]int, len(order)),
		SliceEnd:       make([]int, len(order)),
	}
	computeEnd := make([][]int, len(scheds))
	for i, s := range scheds {
		res.LaneVisitStart[i] = make([]int, len(s.Visits))
		res.LaneVisitEnd[i] = make([]int, len(s.Visits))
		computeEnd[i] = make([]int, len(s.Visits))
	}

	type setKey struct{ lane, set int }
	// pendingStore[(lane,set)] is the visit on that lane's FB set whose
	// stores have not been issued yet (-1 when none).
	pendingStore := map[setKey]int{}
	for li, s := range scheds {
		for _, v := range s.Visits {
			pendingStore[setKey{li, v.Set}] = -1
		}
	}

	dmaFree := 0 // next cycle the shared DMA channel is available
	rcFree := 0  // next cycle the shared RC array is available

	// drainStores issues lane li's visit vi's stores on the shared DMA,
	// no earlier than the visit's compute end.
	drainStores := func(li, vi int) {
		s := scheds[li]
		v := &s.Visits[vi]
		start := dmaFree
		if computeEnd[li][vi] > start {
			start = computeEnd[li][vi]
		}
		for _, m := range v.Stores {
			cost := s.Arch.DataCycles(m.Bytes)
			start += cost
			res.DataCycles += cost
		}
		dmaFree = start
		if start > res.LaneDone[li] {
			res.LaneDone[li] = start
		}
	}

	for si, sl := range order {
		s := scheds[sl.Lane]
		first := true
		for vi := sl.First; vi < sl.First+sl.N; vi++ {
			v := &s.Visits[vi]

			// A lane's transfers never issue before its arrival: the DMA
			// sits idle (or serves other lanes' later slices) until then.
			if dmaFree < arrive[sl.Lane] {
				dmaFree = arrive[sl.Lane]
			}
			if prev := pendingStore[setKey{sl.Lane, v.Set}]; prev >= 0 {
				drainStores(sl.Lane, prev)
			}
			if first {
				res.SliceStart[si] = dmaFree
				first = false
			}

			ctxCost := s.Arch.ContextCycles(v.CtxWords)
			res.CtxCycles += ctxCost
			dmaFree += ctxCost
			for _, m := range v.Loads {
				cost := s.Arch.DataCycles(m.Bytes)
				dmaFree += cost
				res.DataCycles += cost
			}
			transfersDone := dmaFree

			start := transfersDone
			if rcFree > start {
				start = rcFree
			}
			res.StallCycles += start - rcFree
			res.LaneVisitStart[sl.Lane][vi] = start
			computeEnd[sl.Lane][vi] = start + v.ComputeCycles
			res.LaneVisitEnd[sl.Lane][vi] = computeEnd[sl.Lane][vi]
			res.ComputeCycles += v.ComputeCycles
			res.LaneCompute[sl.Lane] += v.ComputeCycles
			rcFree = computeEnd[sl.Lane][vi]
			res.LaneEnd[sl.Lane] = computeEnd[sl.Lane][vi]
			if computeEnd[sl.Lane][vi] > res.LaneDone[sl.Lane] {
				res.LaneDone[sl.Lane] = computeEnd[sl.Lane][vi]
			}

			pendingStore[setKey{sl.Lane, v.Set}] = vi
		}
		res.SliceEnd[si] = rcFree
	}

	// Drain trailing stores, oldest compute first across all lanes for a
	// deterministic DMA order.
	type tail struct{ lane, vi, end int }
	var tails []tail
	for k, vi := range pendingStore {
		if vi >= 0 {
			tails = append(tails, tail{k.lane, vi, computeEnd[k.lane][vi]})
		}
	}
	for i := 0; i < len(tails); i++ {
		for j := i + 1; j < len(tails); j++ {
			ti, tj := tails[i], tails[j]
			if tj.end < ti.end || (tj.end == ti.end && (tj.lane < ti.lane || (tj.lane == ti.lane && tj.vi < ti.vi))) {
				tails[i], tails[j] = tails[j], tails[i]
			}
		}
	}
	for _, t := range tails {
		drainStores(t.lane, t.vi)
	}

	res.TotalCycles = rcFree
	if dmaFree > res.TotalCycles {
		res.TotalCycles = dmaFree
	}
	return res, nil
}
