package sim

import (
	"strings"
	"testing"

	"cds/internal/arch"
	"cds/internal/core"
)

// tenantVisit builds one visit with the given cluster/set and volumes.
func tenantVisit(cluster, set, ctxWords, compute, loadBytes, storeBytes int) core.Visit {
	v := core.Visit{
		Cluster: cluster, Set: set, Block: 0, Iters: 1,
		CtxWords: ctxWords, ComputeCycles: compute,
	}
	if loadBytes > 0 {
		v.Loads = []core.Movement{{Datum: "in", Bytes: loadBytes}}
	}
	if storeBytes > 0 {
		v.Stores = []core.Movement{{Datum: "out", Bytes: storeBytes}}
	}
	return v
}

// laneSched wraps visits in a minimal schedule the executor accepts.
func laneSched(p arch.Params, visits ...core.Visit) *core.Schedule {
	return &core.Schedule{Scheduler: "test", Arch: p, Visits: visits}
}

// fullCover emits one slice per visit, in order — the trivial valid order
// for a single lane.
func fullCover(lane int, s *core.Schedule) []TenantSlice {
	out := make([]TenantSlice, len(s.Visits))
	for i := range s.Visits {
		out[i] = TenantSlice{Lane: lane, First: i, N: 1}
	}
	return out
}

// TestRunTenantsSingleLaneMatchesRun pins the executor to the solo model:
// one lane, trivially ordered, must reproduce sim.Run cycle for cycle.
func TestRunTenantsSingleLaneMatchesRun(t *testing.T) {
	p := arch.M1()
	s := laneSched(p,
		tenantVisit(0, 0, 40, 200, 512, 128),
		tenantVisit(0, 0, 0, 180, 256, 64),
		tenantVisit(1, 1, 32, 150, 384, 96),
		tenantVisit(0, 0, 8, 120, 128, 32),
	)
	solo, err := Run(s)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	res, err := RunTenants([]*core.Schedule{s}, nil, fullCover(0, s))
	if err != nil {
		t.Fatalf("RunTenants: %v", err)
	}
	if res.TotalCycles != solo.TotalCycles {
		t.Errorf("TotalCycles = %d, solo Run = %d", res.TotalCycles, solo.TotalCycles)
	}
	if res.ComputeCycles != solo.ComputeCycles || res.DataCycles != solo.DataCycles ||
		res.CtxCycles != solo.CtxCycles || res.StallCycles != solo.StallCycles {
		t.Errorf("breakdown = compute %d data %d ctx %d stall %d, solo = %d/%d/%d/%d",
			res.ComputeCycles, res.DataCycles, res.CtxCycles, res.StallCycles,
			solo.ComputeCycles, solo.DataCycles, solo.CtxCycles, solo.StallCycles)
	}
	for vi := range s.Visits {
		if res.LaneVisitStart[0][vi] != solo.VisitStart[vi] || res.LaneVisitEnd[0][vi] != solo.VisitEnd[vi] {
			t.Errorf("visit %d: [%d,%d), solo [%d,%d)", vi,
				res.LaneVisitStart[0][vi], res.LaneVisitEnd[0][vi],
				solo.VisitStart[vi], solo.VisitEnd[vi])
		}
	}
	if res.LaneEnd[0] != solo.VisitEnd[len(s.Visits)-1] {
		t.Errorf("LaneEnd = %d, want %d", res.LaneEnd[0], solo.VisitEnd[len(s.Visits)-1])
	}
}

// TestRunTenantsVisitCost pins the pricing helper to the cost model the
// walk realizes.
func TestRunTenantsVisitCost(t *testing.T) {
	p := arch.M1()
	v := tenantVisit(0, 0, 16, 100, 512, 128)
	want := 100 + p.ContextCycles(16) + p.DataCycles(512) + p.DataCycles(128)
	if got := VisitCost(p, &v); got != want {
		t.Errorf("VisitCost = %d, want %d", got, want)
	}
}

// TestRunTenantsArrivalGatesDMA asserts a late lane's transfers never
// issue before its arrival cycle.
func TestRunTenantsArrivalGatesDMA(t *testing.T) {
	p := arch.M1()
	s := laneSched(p, tenantVisit(0, 0, 16, 100, 256, 0))
	res, err := RunTenants([]*core.Schedule{s}, []int{1000}, fullCover(0, s))
	if err != nil {
		t.Fatalf("RunTenants: %v", err)
	}
	if res.SliceStart[0] < 1000 {
		t.Errorf("slice starts at %d, before arrival 1000", res.SliceStart[0])
	}
	transfers := p.ContextCycles(16) + p.DataCycles(256)
	if want := 1000 + transfers; res.LaneVisitStart[0][0] != want {
		t.Errorf("compute starts at %d, want %d", res.LaneVisitStart[0][0], want)
	}
}

// TestRunTenantsInterleavedAccounting runs two lanes slice-interleaved and
// checks the shared-machine dominance facts plus per-lane bookkeeping.
func TestRunTenantsInterleavedAccounting(t *testing.T) {
	p := arch.M1()
	a := laneSched(p,
		tenantVisit(0, 0, 24, 150, 512, 128),
		tenantVisit(1, 1, 24, 150, 512, 128),
	)
	b := laneSched(p, tenantVisit(0, 0, 16, 400, 256, 64))
	order := []TenantSlice{
		{Lane: 0, First: 0, N: 1},
		{Lane: 1, First: 0, N: 1},
		{Lane: 0, First: 1, N: 1},
	}
	res, err := RunTenants([]*core.Schedule{a, b}, nil, order)
	if err != nil {
		t.Fatalf("RunTenants: %v", err)
	}
	if want := 150 + 150 + 400; res.ComputeCycles != want {
		t.Errorf("ComputeCycles = %d, want %d", res.ComputeCycles, want)
	}
	if res.TotalCycles < res.ComputeCycles {
		t.Errorf("makespan %d below total compute %d", res.TotalCycles, res.ComputeCycles)
	}
	if dma := res.DataCycles + res.CtxCycles; res.TotalCycles < dma {
		t.Errorf("makespan %d below DMA busy %d", res.TotalCycles, dma)
	}
	if res.LaneCompute[0] != 300 || res.LaneCompute[1] != 400 {
		t.Errorf("LaneCompute = %v, want [300 400]", res.LaneCompute)
	}
	if res.LaneEnd[0] != res.LaneVisitEnd[0][1] || res.LaneEnd[1] != res.LaneVisitEnd[1][0] {
		t.Errorf("LaneEnd = %v inconsistent with LaneVisitEnd %v", res.LaneEnd, res.LaneVisitEnd)
	}
	// Lane B computes between A's two visits: the RC array serializes.
	if res.LaneVisitStart[0][1] < res.LaneVisitEnd[1][0] {
		t.Errorf("lane 0 visit 1 starts at %d while lane 1 computes until %d",
			res.LaneVisitStart[0][1], res.LaneVisitEnd[1][0])
	}
	// LaneDone covers the trailing stores; the makespan covers LaneDone.
	for i, done := range res.LaneDone {
		if done < res.LaneEnd[i] {
			t.Errorf("lane %d: done %d before compute end %d", i, done, res.LaneEnd[i])
		}
		if res.TotalCycles < done {
			t.Errorf("makespan %d below lane %d done %d", res.TotalCycles, i, done)
		}
	}
}

// TestRunTenantsRejects walks the validation surface.
func TestRunTenantsRejects(t *testing.T) {
	p := arch.M1()
	s := laneSched(p, tenantVisit(0, 0, 8, 100, 128, 0), tenantVisit(1, 1, 8, 100, 128, 0))
	cases := []struct {
		name   string
		scheds []*core.Schedule
		arrive []int
		order  []TenantSlice
		want   string
	}{
		{"no schedules", nil, nil, nil, "no tenant schedules"},
		{"nil schedule", []*core.Schedule{nil}, nil, nil, "nil schedule"},
		{"arrive length", []*core.Schedule{s}, []int{1, 2}, fullCover(0, s), "arrival cycles for"},
		{"negative arrival", []*core.Schedule{s}, []int{-1}, fullCover(0, s), "negative arrival"},
		{"lane out of range", []*core.Schedule{s}, nil,
			[]TenantSlice{{Lane: 3, First: 0, N: 1}}, "out of range"},
		{"empty slice", []*core.Schedule{s}, nil,
			[]TenantSlice{{Lane: 0, First: 0, N: 0}}, "empty slice"},
		{"out of order", []*core.Schedule{s}, nil,
			[]TenantSlice{{Lane: 0, First: 1, N: 1}, {Lane: 0, First: 0, N: 1}}, "expected"},
		{"overrun", []*core.Schedule{s}, nil,
			[]TenantSlice{{Lane: 0, First: 0, N: 3}}, "overruns"},
		{"incomplete cover", []*core.Schedule{s}, nil,
			[]TenantSlice{{Lane: 0, First: 0, N: 1}}, "covers"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := RunTenants(tc.scheds, tc.arrive, tc.order)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}
