package sim

import (
	"fmt"
	"io"

	"cds/internal/core"
	"cds/internal/trace"
)

// WriteTrace exports the simulated execution as a Chrome trace: the RC
// array's compute intervals on one track and the DMA channel's transfer
// intervals on another, so the overlap structure can be inspected
// visually in chrome://tracing or Perfetto.
//
// The trace is produced by re-running the simulation with a recorder
// (the walk is deterministic, so this is exact, not a reconstruction)
// and must agree with the caller's result; a result that does not match
// the schedule is rejected.
func WriteTrace(w io.Writer, s *core.Schedule, r *Result) error {
	if s == nil || r == nil || len(r.VisitStart) != len(s.Visits) {
		return fmt.Errorf("sim: result does not match schedule")
	}
	rr, tl, err := Trace(s)
	if err != nil {
		return err
	}
	if rr.TotalCycles != r.TotalCycles || rr.ComputeCycles != r.ComputeCycles {
		return fmt.Errorf("sim: result does not match schedule")
	}
	return trace.WriteChrome(w, tl)
}
