package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"cds/internal/core"
)

// traceEvent is one Chrome trace-event ("Trace Event Format", the JSON
// consumed by chrome://tracing and Perfetto). Durations use the "X"
// (complete event) phase; timestamps are in microseconds, so one RC cycle
// maps to one microsecond for viewing convenience.
type traceEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat"`
	Phase string            `json:"ph"`
	TS    int               `json:"ts"`
	Dur   int               `json:"dur"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Args  map[string]string `json:"args,omitempty"`
}

// WriteTrace exports the simulated execution as a Chrome trace: the RC
// array's compute intervals on one track and the DMA channel's transfer
// intervals on another, so the overlap structure can be inspected
// visually in chrome://tracing or Perfetto.
func WriteTrace(w io.Writer, s *core.Schedule, r *Result) error {
	if len(r.VisitStart) != len(s.Visits) {
		return fmt.Errorf("sim: result does not match schedule")
	}
	const (
		pid      = 1
		tidArray = 1
		tidDMA   = 2
	)
	var events []traceEvent

	// Compute intervals come straight from the result.
	for vi := range s.Visits {
		v := &s.Visits[vi]
		events = append(events, traceEvent{
			Name:  fmt.Sprintf("cluster %d (block %d)", v.Cluster, v.Block),
			Cat:   "compute",
			Phase: "X",
			TS:    r.VisitStart[vi],
			Dur:   r.VisitEnd[vi] - r.VisitStart[vi],
			PID:   pid,
			TID:   tidArray,
			Args: map[string]string{
				"set":        fmt.Sprint(v.Set),
				"iterations": fmt.Sprint(v.Iters),
			},
		})
	}

	// DMA intervals are reconstructed with the same walk Run uses.
	p := s.Arch
	pendingStore := map[int]int{}
	for _, v := range s.Visits {
		pendingStore[v.Set] = -1
	}
	dmaFree := 0
	computeEnd := r.VisitEnd
	emitDMA := func(name, cat string, start, dur int) {
		if dur == 0 {
			return
		}
		events = append(events, traceEvent{
			Name: name, Cat: cat, Phase: "X",
			TS: start, Dur: dur, PID: pid, TID: tidDMA,
		})
	}
	for vi := range s.Visits {
		v := &s.Visits[vi]
		if prev := pendingStore[v.Set]; prev >= 0 {
			start := dmaFree
			if computeEnd[prev] > start {
				start = computeEnd[prev]
			}
			cost := 0
			for _, m := range s.Visits[prev].Stores {
				cost += p.DataCycles(m.Bytes)
			}
			emitDMA(fmt.Sprintf("store c%d b%d", s.Visits[prev].Cluster, s.Visits[prev].Block),
				"store", start, cost)
			dmaFree = start + cost
		}
		ctx := p.ContextCycles(v.CtxWords)
		emitDMA(fmt.Sprintf("ctx c%d b%d", v.Cluster, v.Block), "context", dmaFree, ctx)
		dmaFree += ctx
		load := 0
		for _, m := range v.Loads {
			load += p.DataCycles(m.Bytes)
		}
		emitDMA(fmt.Sprintf("load c%d b%d", v.Cluster, v.Block), "load", dmaFree, load)
		dmaFree += load
		pendingStore[v.Set] = vi
	}
	for _, vi := range sortedPending(pendingStore) {
		start := dmaFree
		if computeEnd[vi] > start {
			start = computeEnd[vi]
		}
		cost := 0
		for _, m := range s.Visits[vi].Stores {
			cost += p.DataCycles(m.Bytes)
		}
		emitDMA(fmt.Sprintf("store c%d b%d", s.Visits[vi].Cluster, s.Visits[vi].Block),
			"store", start, cost)
		dmaFree = start + cost
	}

	// Thread names.
	meta := []traceEvent{
		{Name: "thread_name", Phase: "M", PID: pid, TID: tidArray,
			Args: map[string]string{"name": "RC array"}},
		{Name: "thread_name", Phase: "M", PID: pid, TID: tidDMA,
			Args: map[string]string{"name": "DMA channel"}},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}{append(meta, events...)})
}
