package sim

import (
	"reflect"
	"testing"

	"cds/internal/core"
	"cds/internal/trace"
	"cds/internal/workloads"
)

// TestTracedIdenticalToUntraced is the subsystem's conservativeness
// guarantee: recording a timeline must not change the simulation. Run
// and RunTraced share one walk, and this pins the results byte-identical
// across every workload and scheduler.
func TestTracedIdenticalToUntraced(t *testing.T) {
	for _, e := range workloads.All() {
		for _, sched := range []core.Scheduler{core.Basic{}, core.DataScheduler{}, core.CompleteDataScheduler{}} {
			s, err := sched.Schedule(e.Arch, e.Part)
			if err != nil {
				t.Fatalf("%s/%s: %v", e.Name, sched.Name(), err)
			}
			plain, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			rec := trace.NewRecorder()
			traced, err := RunTraced(s, rec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, traced) {
				t.Errorf("%s/%s: traced result differs:\nplain:  %+v\ntraced: %+v",
					e.Name, sched.Name(), plain, traced)
			}
			// And a nil recorder through RunTraced is exactly Run.
			nilTraced, err := RunTraced(s, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, nilTraced) {
				t.Errorf("%s/%s: nil-recorder result differs", e.Name, sched.Name())
			}
		}
	}
}

// TestTimelineAgreesWithResult pins the exactness of the recorded spans:
// per-resource busy totals equal the simulator's accounting, the spans
// tile the makespan, and the analytics decomposition adds up.
func TestTimelineAgreesWithResult(t *testing.T) {
	for _, e := range workloads.All() {
		for _, sched := range []core.Scheduler{core.Basic{}, core.DataScheduler{}, core.CompleteDataScheduler{}} {
			s, err := sched.Schedule(e.Arch, e.Part)
			if err != nil {
				t.Fatalf("%s/%s: %v", e.Name, sched.Name(), err)
			}
			r, tl, err := Trace(s)
			if err != nil {
				t.Fatal(err)
			}
			name := e.Name + "/" + sched.Name()
			if tl.Label != s.Scheduler {
				t.Errorf("%s: label %q, want %q", name, tl.Label, s.Scheduler)
			}
			if tl.Makespan != r.TotalCycles {
				t.Errorf("%s: makespan %d != total %d", name, tl.Makespan, r.TotalCycles)
			}
			if got := tl.Busy(trace.DMA); got != r.DMABusy() {
				t.Errorf("%s: DMA busy %d != result %d", name, got, r.DMABusy())
			}
			if got := tl.Busy(trace.RCArray); got != r.ComputeCycles {
				t.Errorf("%s: RC busy %d != compute %d", name, got, r.ComputeCycles)
			}
			if got := tl.BusyKind(trace.KindContext); got != r.CtxCycles {
				t.Errorf("%s: ctx span cycles %d != result %d", name, got, r.CtxCycles)
			}
			if got := tl.BusyKind(trace.KindLoad) + tl.BusyKind(trace.KindStore); got != r.DataCycles {
				t.Errorf("%s: data span cycles %d != result %d", name, got, r.DataCycles)
			}
			if _, err := trace.Tile(tl); err != nil {
				t.Errorf("%s: spans do not tile: %v", name, err)
			}
			a := trace.Analyze(tl)
			if sum := a.Path.Compute + a.Path.ExposedCtx + a.Path.ExposedLoad +
				a.Path.ExposedStore + a.Path.Dead; sum != r.TotalCycles {
				t.Errorf("%s: decomposition %d != makespan %d", name, sum, r.TotalCycles)
			}
			// Volumes carried on spans match the result's accounting.
			loadB, storeB, ctxW := 0, 0, 0
			for _, sp := range tl.Spans {
				switch sp.Kind {
				case trace.KindLoad:
					loadB += sp.Bytes
				case trace.KindStore:
					storeB += sp.Bytes
				case trace.KindContext:
					ctxW += sp.Words
				}
			}
			if loadB != r.LoadBytes || storeB != r.StoreBytes || ctxW != r.CtxWords {
				t.Errorf("%s: span volumes %d/%d/%d != result %d/%d/%d",
					name, loadB, storeB, ctxW, r.LoadBytes, r.StoreBytes, r.CtxWords)
			}
		}
	}
}

// TestTraceMarksFBSwitches checks set-switch marks land on compute
// starts of visits whose set differs from the previous visit's.
func TestTraceMarksFBSwitches(t *testing.T) {
	e := workloads.MPEG()
	s, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
	if err != nil {
		t.Fatal(err)
	}
	r, tl, err := Trace(s)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for vi := 1; vi < len(s.Visits); vi++ {
		if s.Visits[vi].Set != s.Visits[vi-1].Set {
			want++
		}
	}
	got := 0
	for _, m := range tl.Marks {
		if m.Kind != trace.MarkFBSwitch {
			continue
		}
		got++
		if m.Visit <= 0 || m.Visit >= len(s.Visits) {
			t.Fatalf("mark visit %d out of range", m.Visit)
		}
		if m.Cycle != r.VisitStart[m.Visit] {
			t.Errorf("mark at %d, visit %d computes at %d", m.Cycle, m.Visit, r.VisitStart[m.Visit])
		}
	}
	if got != want {
		t.Errorf("%d FB switch marks, want %d", got, want)
	}
	if want == 0 {
		t.Fatal("MPEG/cds schedule has no set switches; test is vacuous")
	}
}

func TestTraceErrors(t *testing.T) {
	if _, _, err := Trace(nil); err == nil {
		t.Error("nil schedule accepted")
	}
	s := handSchedule()
	s.Arch.BusBytes = 0
	if _, _, err := Trace(s); err == nil {
		t.Error("invalid arch accepted")
	}
}

// BenchmarkRunTracedNil pins the disabled-tracing cost: RunTraced with a
// nil recorder must track BenchmarkRun (the nil receiver short-circuits
// every recording call).
func BenchmarkRunTracedNil(b *testing.B) {
	e := workloads.MPEG()
	s, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunTraced(s, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunTraced measures the enabled-tracing cost for comparison.
func BenchmarkRunTraced(b *testing.B) {
	e := workloads.MPEG()
	s, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := RunTraced(s, trace.NewRecorder()); err != nil {
			b.Fatal(err)
		}
	}
}
