package spec_test

import (
	"testing"

	"cds/internal/spec"
)

// FuzzParse: arbitrary input must never panic; accepted specs must
// produce a valid partition.
func FuzzParse(f *testing.F) {
	f.Add([]byte(goodSpec))
	f.Add([]byte("{"))
	f.Add([]byte(`{"name":"x","iterations":1,"data":[{"name":"d","size":4}],"kernels":[{"name":"k","contextWords":1,"computeCycles":1,"inputs":["d"]}],"clusters":[1]}`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		part, pa, err := spec.Parse(raw)
		if err != nil {
			return
		}
		if err := part.Validate(); err != nil {
			t.Fatalf("accepted spec produced invalid partition: %v", err)
		}
		if err := pa.Validate(); err != nil {
			t.Fatalf("accepted spec produced invalid arch: %v", err)
		}
	})
}
