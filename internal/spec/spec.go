// Package spec parses the JSON application format the cds command-line
// tool consumes: data objects, kernels, a cluster decomposition and
// optional machine overrides.
//
//	{
//	  "name": "pipe", "iterations": 8,
//	  "arch": {"fbSetBytes": 2048, "cmWords": 512},
//	  "data": [
//	    {"name": "in", "size": 100},
//	    {"name": "tile", "size": 64, "streamed": true},
//	    {"name": "out", "size": 50, "final": true}
//	  ],
//	  "kernels": [
//	    {"name": "k1", "contextWords": 64, "computeCycles": 500,
//	     "inputs": ["in"], "outputs": ["out"]}
//	  ],
//	  "clusters": [1]
//	}
package spec

import (
	"encoding/json"
	"fmt"

	"cds/internal/app"
	"cds/internal/arch"
)

// Arch overrides machine parameters; zero fields keep the M1 defaults.
type Arch struct {
	FBSetBytes int `json:"fbSetBytes"`
	CMWords    int `json:"cmWords"`
}

// Datum describes one data object.
type Datum struct {
	Name     string `json:"name"`
	Size     int    `json:"size"`
	Final    bool   `json:"final"`
	Streamed bool   `json:"streamed"`
}

// Kernel describes one kernel.
type Kernel struct {
	Name          string   `json:"name"`
	ContextWords  int      `json:"contextWords"`
	ComputeCycles int      `json:"computeCycles"`
	Inputs        []string `json:"inputs"`
	Outputs       []string `json:"outputs"`
	ContextGroup  string   `json:"contextGroup"`
}

// Spec is the top-level document.
type Spec struct {
	Name       string   `json:"name"`
	Iterations int      `json:"iterations"`
	Arch       *Arch    `json:"arch"`
	Data       []Datum  `json:"data"`
	Kernels    []Kernel `json:"kernels"`
	Clusters   []int    `json:"clusters"`
}

// Parse decodes and validates a JSON spec, returning the partitioned
// application and the machine to run it on.
func Parse(raw []byte) (*app.Partition, arch.Params, error) {
	var sp Spec
	if err := json.Unmarshal(raw, &sp); err != nil {
		return nil, arch.Params{}, fmt.Errorf("spec: %w", err)
	}
	return sp.Build()
}

// Build materializes an already-decoded spec.
func (sp *Spec) Build() (*app.Partition, arch.Params, error) {
	a := &app.App{Name: sp.Name, Iterations: sp.Iterations}
	for _, d := range sp.Data {
		a.Data = append(a.Data, app.Datum{
			Name: d.Name, Size: d.Size, Final: d.Final, Streamed: d.Streamed,
		})
	}
	for _, k := range sp.Kernels {
		a.Kernels = append(a.Kernels, app.Kernel{
			Name:          k.Name,
			ContextWords:  k.ContextWords,
			ComputeCycles: k.ComputeCycles,
			Inputs:        k.Inputs,
			Outputs:       k.Outputs,
			ContextGroup:  k.ContextGroup,
		})
	}
	if err := a.Finalize(); err != nil {
		return nil, arch.Params{}, fmt.Errorf("spec %q: %w", sp.Name, err)
	}

	pa := arch.M1()
	if sp.Arch != nil {
		if sp.Arch.FBSetBytes > 0 {
			pa.FBSetBytes = sp.Arch.FBSetBytes
		}
		if sp.Arch.CMWords > 0 {
			pa.CMWords = sp.Arch.CMWords
		}
	}
	if err := pa.Validate(); err != nil {
		return nil, arch.Params{}, fmt.Errorf("spec %q: %w", sp.Name, err)
	}
	if len(sp.Clusters) == 0 {
		return nil, arch.Params{}, fmt.Errorf("spec %q: missing clusters", sp.Name)
	}
	part, err := app.NewPartition(a, pa.FBSets, sp.Clusters...)
	if err != nil {
		return nil, arch.Params{}, fmt.Errorf("spec %q: %w", sp.Name, err)
	}
	return part, pa, nil
}

// FromPartition converts a partitioned application (plus its machine)
// back into a Spec, the inverse of Build. cmd/experiments -dump uses it
// to export the built-in paper workloads as editable JSON.
func FromPartition(part *app.Partition, pa arch.Params) *Spec {
	sp := &Spec{
		Name:       part.App.Name,
		Iterations: part.App.Iterations,
		Arch:       &Arch{FBSetBytes: pa.FBSetBytes, CMWords: pa.CMWords},
	}
	for _, d := range part.App.Data {
		sp.Data = append(sp.Data, Datum{
			Name: d.Name, Size: d.Size, Final: d.Final, Streamed: d.Streamed,
		})
	}
	for _, k := range part.App.Kernels {
		sp.Kernels = append(sp.Kernels, Kernel{
			Name:          k.Name,
			ContextWords:  k.ContextWords,
			ComputeCycles: k.ComputeCycles,
			Inputs:        k.Inputs,
			Outputs:       k.Outputs,
			ContextGroup:  k.ContextGroup,
		})
	}
	for _, c := range part.Clusters {
		sp.Clusters = append(sp.Clusters, len(c.Kernels))
	}
	return sp
}

// Marshal renders a spec as indented JSON.
func (sp *Spec) Marshal() ([]byte, error) {
	return json.MarshalIndent(sp, "", "  ")
}
