// Package spec parses the JSON application format the cds command-line
// tool consumes: data objects, kernels, a cluster decomposition and
// optional machine overrides.
//
//	{
//	  "name": "pipe", "iterations": 8,
//	  "arch": {"fbSetBytes": 2048, "cmWords": 512},
//	  "data": [
//	    {"name": "in", "size": 100},
//	    {"name": "tile", "size": 64, "streamed": true},
//	    {"name": "out", "size": 50, "final": true}
//	  ],
//	  "kernels": [
//	    {"name": "k1", "contextWords": 64, "computeCycles": 500,
//	     "inputs": ["in"], "outputs": ["out"]}
//	  ],
//	  "clusters": [1]
//	}
package spec

import (
	"encoding/json"
	"fmt"
	"strconv"

	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/scherr"
)

// Arch overrides machine parameters; zero fields keep the M1 defaults.
type Arch struct {
	FBSetBytes int `json:"fbSetBytes"`
	CMWords    int `json:"cmWords"`
}

// Datum describes one data object.
type Datum struct {
	Name     string `json:"name"`
	Size     int    `json:"size"`
	Final    bool   `json:"final"`
	Streamed bool   `json:"streamed"`
}

// Kernel describes one kernel.
type Kernel struct {
	Name          string   `json:"name"`
	ContextWords  int      `json:"contextWords"`
	ComputeCycles int      `json:"computeCycles"`
	Inputs        []string `json:"inputs"`
	Outputs       []string `json:"outputs"`
	ContextGroup  string   `json:"contextGroup"`
}

// Spec is the top-level document.
type Spec struct {
	Name       string   `json:"name"`
	Iterations int      `json:"iterations"`
	Arch       *Arch    `json:"arch"`
	Data       []Datum  `json:"data"`
	Kernels    []Kernel `json:"kernels"`
	Clusters   []int    `json:"clusters"`
}

// Parse decodes and validates a JSON spec, returning the partitioned
// application and the machine to run it on. All rejections — malformed
// JSON included — match scherr.ErrInvalidSpec under errors.Is, and
// validation errors name the offending field by its JSON path (e.g.
// "kernels[3].contextWords").
func Parse(raw []byte) (*app.Partition, arch.Params, error) {
	var sp Spec
	if err := json.Unmarshal(raw, &sp); err != nil {
		return nil, arch.Params{}, fmt.Errorf("spec: %w: %w", scherr.ErrInvalidSpec, err)
	}
	return sp.Build()
}

// invalid builds a field-path validation error: "spec: <path>: <detail>",
// matching scherr.ErrInvalidSpec.
func invalid(path, format string, args ...any) error {
	return fmt.Errorf("spec: %w: %s: %s", scherr.ErrInvalidSpec, path, fmt.Sprintf(format, args...))
}

// elem formats an indexed field path ("data[3]"). Only error branches
// call it — Validate runs on every streaming replan, so the success
// path must not format path strings per element.
func elem(field string, i int) string {
	return field + "[" + strconv.Itoa(i) + "]"
}

// Validate checks the decoded document field by field, before any
// application semantics run, so a bad spec is reported by the JSON path
// the author has to fix rather than by an internal app-model name.
func (sp *Spec) Validate() error {
	if sp.Iterations < 1 {
		return invalid("iterations", "must be >= 1, got %d", sp.Iterations)
	}
	// Effective machine limits: overrides when declared, M1 defaults
	// otherwise (mirroring Build). A datum that cannot fit one Frame
	// Buffer set can never be scheduled, so it is a spec error, not a
	// scheduling outcome.
	fbSet := arch.M1().FBSetBytes
	if sp.Arch != nil && sp.Arch.FBSetBytes > 0 {
		fbSet = sp.Arch.FBSetBytes
	}
	dataNames := make(map[string]int, len(sp.Data))
	for i, d := range sp.Data {
		if d.Name == "" {
			return invalid(elem("data", i)+".name", "must not be empty")
		}
		if d.Size <= 0 {
			return invalid(elem("data", i)+".size", "must be positive, got %d", d.Size)
		}
		if d.Size > fbSet {
			return invalid(elem("data", i)+".size", "%d bytes exceeds the %d-byte frame-buffer set (%q cannot ever be resident)", d.Size, fbSet, d.Name)
		}
		if prev, dup := dataNames[d.Name]; dup {
			return invalid(elem("data", i)+".name", "duplicates data[%d] (%q)", prev, d.Name)
		}
		dataNames[d.Name] = i
	}
	if len(sp.Kernels) == 0 {
		return invalid("kernels", "must list at least one kernel")
	}
	kernelNames := make(map[string]int, len(sp.Kernels))
	for i, k := range sp.Kernels {
		if k.Name == "" {
			return invalid(elem("kernels", i)+".name", "must not be empty")
		}
		if prev, dup := kernelNames[k.Name]; dup {
			return invalid(elem("kernels", i)+".name", "duplicates kernels[%d] (%q)", prev, k.Name)
		}
		kernelNames[k.Name] = i
		if k.ContextWords <= 0 {
			return invalid(elem("kernels", i)+".contextWords", "must be positive, got %d", k.ContextWords)
		}
		if k.ComputeCycles <= 0 {
			return invalid(elem("kernels", i)+".computeCycles", "must be positive, got %d", k.ComputeCycles)
		}
		seenIn := make(map[string]int, len(k.Inputs))
		for j, in := range k.Inputs {
			if _, ok := dataNames[in]; !ok {
				return invalid(elem(elem("kernels", i)+".inputs", j), "references undeclared datum %q", in)
			}
			if prev, dup := seenIn[in]; dup {
				return invalid(elem(elem("kernels", i)+".inputs", j), "duplicates inputs[%d] (%q)", prev, in)
			}
			seenIn[in] = j
		}
		seenOut := make(map[string]int, len(k.Outputs))
		for j, out := range k.Outputs {
			if _, ok := dataNames[out]; !ok {
				return invalid(elem(elem("kernels", i)+".outputs", j), "references undeclared datum %q", out)
			}
			if prev, dup := seenOut[out]; dup {
				return invalid(elem(elem("kernels", i)+".outputs", j), "duplicates outputs[%d] (%q)", prev, out)
			}
			seenOut[out] = j
			if _, self := seenIn[out]; self {
				return invalid(elem(elem("kernels", i)+".outputs", j), "kernel %q both reads and writes %q (self-dependency)", k.Name, out)
			}
		}
	}
	if len(sp.Clusters) == 0 {
		return invalid("clusters", "must list at least one cluster size")
	}
	total := 0
	for i, n := range sp.Clusters {
		if n < 1 {
			return invalid(elem("clusters", i), "must be >= 1, got %d", n)
		}
		total += n
	}
	if total != len(sp.Kernels) {
		return invalid("clusters", "sizes sum to %d, but the spec declares %d kernels", total, len(sp.Kernels))
	}
	if sp.Arch != nil {
		if sp.Arch.FBSetBytes < 0 {
			return invalid("arch.fbSetBytes", "must not be negative, got %d", sp.Arch.FBSetBytes)
		}
		if sp.Arch.CMWords < 0 {
			return invalid("arch.cmWords", "must not be negative, got %d", sp.Arch.CMWords)
		}
	}
	return nil
}

// Build materializes an already-decoded spec. Validation failures match
// scherr.ErrInvalidSpec and name the offending field path.
func (sp *Spec) Build() (*app.Partition, arch.Params, error) {
	if err := sp.Validate(); err != nil {
		return nil, arch.Params{}, err
	}
	a := &app.App{Name: sp.Name, Iterations: sp.Iterations}
	for _, d := range sp.Data {
		a.Data = append(a.Data, app.Datum{
			Name: d.Name, Size: d.Size, Final: d.Final, Streamed: d.Streamed,
		})
	}
	for _, k := range sp.Kernels {
		a.Kernels = append(a.Kernels, app.Kernel{
			Name:          k.Name,
			ContextWords:  k.ContextWords,
			ComputeCycles: k.ComputeCycles,
			Inputs:        k.Inputs,
			Outputs:       k.Outputs,
			ContextGroup:  k.ContextGroup,
		})
	}
	if err := a.Finalize(); err != nil {
		// Semantic violations the field checks cannot see (dataflow
		// ordering, double producers, ...) still class as invalid specs.
		return nil, arch.Params{}, fmt.Errorf("spec %q: %w: %w", sp.Name, scherr.ErrInvalidSpec, err)
	}

	pa := arch.M1()
	if sp.Arch != nil {
		if sp.Arch.FBSetBytes > 0 {
			pa.FBSetBytes = sp.Arch.FBSetBytes
		}
		if sp.Arch.CMWords > 0 {
			pa.CMWords = sp.Arch.CMWords
		}
	}
	if err := pa.Validate(); err != nil {
		return nil, arch.Params{}, fmt.Errorf("spec %q: %w: %w", sp.Name, scherr.ErrInvalidSpec, err)
	}
	part, err := app.NewPartition(a, pa.FBSets, sp.Clusters...)
	if err != nil {
		return nil, arch.Params{}, fmt.Errorf("spec %q: %w: %w", sp.Name, scherr.ErrInvalidSpec, err)
	}
	return part, pa, nil
}

// FromPartition converts a partitioned application (plus its machine)
// back into a Spec, the inverse of Build. cmd/experiments -dump uses it
// to export the built-in paper workloads as editable JSON.
func FromPartition(part *app.Partition, pa arch.Params) *Spec {
	sp := &Spec{
		Name:       part.App.Name,
		Iterations: part.App.Iterations,
		Arch:       &Arch{FBSetBytes: pa.FBSetBytes, CMWords: pa.CMWords},
	}
	for _, d := range part.App.Data {
		sp.Data = append(sp.Data, Datum{
			Name: d.Name, Size: d.Size, Final: d.Final, Streamed: d.Streamed,
		})
	}
	for _, k := range part.App.Kernels {
		sp.Kernels = append(sp.Kernels, Kernel{
			Name:          k.Name,
			ContextWords:  k.ContextWords,
			ComputeCycles: k.ComputeCycles,
			Inputs:        k.Inputs,
			Outputs:       k.Outputs,
			ContextGroup:  k.ContextGroup,
		})
	}
	for _, c := range part.Clusters {
		sp.Clusters = append(sp.Clusters, len(c.Kernels))
	}
	return sp
}

// Marshal renders a spec as indented JSON.
func (sp *Spec) Marshal() ([]byte, error) {
	return json.MarshalIndent(sp, "", "  ")
}

// PruneOrphanData removes data no kernel references. A datum that is
// neither produced nor consumed fails validation, so programmatic spec
// producers (the corpus generator, the delta minimizer) call this after
// surgery that may leave declarations behind.
func (sp *Spec) PruneOrphanData() {
	used := make(map[string]bool, len(sp.Data))
	for _, k := range sp.Kernels {
		for _, n := range k.Inputs {
			used[n] = true
		}
		for _, n := range k.Outputs {
			used[n] = true
		}
	}
	kept := sp.Data[:0]
	for _, d := range sp.Data {
		if used[d.Name] {
			kept = append(kept, d)
		}
	}
	sp.Data = kept
}
