package spec_test

import (
	"errors"
	"os"
	"strings"
	"testing"

	"cds/internal/scherr"
	"cds/internal/spec"
	"cds/internal/workloads"
)

const goodSpec = `{
  "name": "pipe", "iterations": 8,
  "arch": {"fbSetBytes": 2048, "cmWords": 256},
  "data": [
    {"name": "in", "size": 100},
    {"name": "tile", "size": 64, "streamed": true},
    {"name": "mid", "size": 40},
    {"name": "out", "size": 50, "final": true}
  ],
  "kernels": [
    {"name": "k1", "contextWords": 64, "computeCycles": 500,
     "inputs": ["in", "tile"], "outputs": ["mid"]},
    {"name": "k2", "contextWords": 64, "computeCycles": 300,
     "inputs": ["mid"], "outputs": ["out"], "contextGroup": "k1"}
  ],
  "clusters": [1, 1]
}`

func TestParseGoodSpec(t *testing.T) {
	part, pa, err := spec.Parse([]byte(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	if part.App.Name != "pipe" || part.App.Iterations != 8 {
		t.Errorf("app = %s/%d", part.App.Name, part.App.Iterations)
	}
	if len(part.Clusters) != 2 {
		t.Errorf("clusters = %d, want 2", len(part.Clusters))
	}
	if pa.FBSetBytes != 2048 || pa.CMWords != 256 {
		t.Errorf("arch overrides lost: %+v", pa)
	}
	// Flags survive.
	if !part.App.IsStreamed("tile") {
		t.Error("streamed flag lost")
	}
	d, _ := part.App.DatumByName("out")
	if !d.Final {
		t.Error("final flag lost")
	}
	ki, _ := part.App.KernelIndex("k2")
	if part.App.Kernels[ki].CtxGroup() != "k1" {
		t.Error("context group lost")
	}
}

func TestParseDefaultsArch(t *testing.T) {
	raw := strings.Replace(goodSpec, `"arch": {"fbSetBytes": 2048, "cmWords": 256},`, "", 1)
	_, pa, err := spec.Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if pa.Name != "M1" {
		t.Errorf("arch = %+v, want M1 defaults", pa)
	}
}

// TestParseErrors pins the validation contract: every rejection matches
// scherr.ErrInvalidSpec under errors.Is and names the offending field by
// its JSON path, so the author of a hand-written spec knows exactly what
// to fix.
func TestParseErrors(t *testing.T) {
	tests := []struct {
		name, old, new, wantSub string
	}{
		{"bad json", goodSpec, "{", "spec"},
		{"zero iterations", `"iterations": 8`, `"iterations": 0`, "iterations"},
		{"empty datum name", `{"name": "tile", "size": 64, "streamed": true}`,
			`{"name": "", "size": 64, "streamed": true}`, "data[1].name"},
		{"bad datum size", `{"name": "mid", "size": 40}`, `{"name": "mid", "size": 0}`, "data[2].size"},
		{"duplicate datum", `{"name": "mid", "size": 40}`, `{"name": "in", "size": 40}`, "data[2].name"},
		{"bad context words", `"name": "k2", "contextWords": 64`, `"name": "k2", "contextWords": -3`,
			"kernels[1].contextWords"},
		{"bad compute cycles", `"computeCycles": 300`, `"computeCycles": 0`, "kernels[1].computeCycles"},
		{"unknown input", `"inputs": ["in", "tile"]`, `"inputs": ["ghost"]`, "kernels[0].inputs[0]"},
		{"unknown output", `"outputs": ["out"]`, `"outputs": ["ghost"]`, "kernels[1].outputs[0]"},
		{"duplicate kernel", `"name": "k2", "contextWords"`, `"name": "k1", "contextWords"`, "kernels[1].name"},
		{"cluster sum off", `"clusters": [1, 1]`, `"clusters": [1]`, "clusters"},
		{"zero cluster", `"clusters": [1, 1]`, `"clusters": [0, 2]`, "clusters[0]"},
		{"no clusters", `"clusters": [1, 1]`, `"clusters": []`, "clusters"},
		{"negative FB", `"fbSetBytes": 2048`, `"fbSetBytes": -1`, "arch.fbSetBytes"},
		{"duplicate input", `"inputs": ["in", "tile"]`, `"inputs": ["in", "in"]`, "kernels[0].inputs[1]"},
		{"duplicate output", `"outputs": ["mid"]`, `"outputs": ["mid", "mid"]`, "kernels[0].outputs[1]"},
		{"self dependency", `"inputs": ["mid"], "outputs": ["out"]`,
			`"inputs": ["mid"], "outputs": ["mid"]`, "kernels[1].outputs[0]"},
		{"datum exceeds FB set", `{"name": "in", "size": 100}`, `{"name": "in", "size": 4096}`, "data[0].size"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			raw := strings.Replace(goodSpec, tt.old, tt.new, 1)
			if raw == goodSpec {
				t.Fatalf("mutation %q did not apply", tt.old)
			}
			_, _, err := spec.Parse([]byte(raw))
			if err == nil {
				t.Fatal("Parse accepted a broken spec")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not mention %q", err, tt.wantSub)
			}
			if !errors.Is(err, scherr.ErrInvalidSpec) {
				t.Errorf("error %q does not match scherr.ErrInvalidSpec", err)
			}
		})
	}
}

// TestOversizeDatumAgainstDefaultArch: the frame-buffer footprint check
// applies against the M1 default when the spec declares no arch block —
// a datum that cannot fit one FB set is a spec error even before any
// scheduling runs.
func TestOversizeDatumAgainstDefaultArch(t *testing.T) {
	raw := `{"name":"x","iterations":1,
	  "data":[{"name":"d","size":99999}],
	  "kernels":[{"name":"k","contextWords":1,"computeCycles":1,"inputs":["d"]}],
	  "clusters":[1]}`
	_, _, err := spec.Parse([]byte(raw))
	if err == nil {
		t.Fatal("Parse accepted a datum bigger than the default frame-buffer set")
	}
	if !strings.Contains(err.Error(), "data[0].size") {
		t.Errorf("error %q does not name data[0].size", err)
	}
	if !errors.Is(err, scherr.ErrInvalidSpec) {
		t.Errorf("error %q does not match scherr.ErrInvalidSpec", err)
	}
}

// TestSemanticErrorsStayTyped covers rejections only app.Finalize can
// see (dataflow ordering, double producers): they keep the taxonomy
// class even though they have no single field path.
func TestSemanticErrorsStayTyped(t *testing.T) {
	raw := strings.Replace(goodSpec, `"outputs": ["out"], "contextGroup": "k1"`,
		`"outputs": ["mid"], "contextGroup": "k1"`, 1)
	_, _, err := spec.Parse([]byte(raw))
	if err == nil {
		t.Fatal("double producer accepted")
	}
	if !errors.Is(err, scherr.ErrInvalidSpec) {
		t.Errorf("semantic rejection %q lost the ErrInvalidSpec class", err)
	}
}

func TestValidateAcceptsAllPaperWorkloads(t *testing.T) {
	for _, e := range workloads.All() {
		if err := spec.FromPartition(e.Part, e.Arch).Validate(); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
	}
}

func TestParsedSpecSchedules(t *testing.T) {
	part, pa, err := spec.Parse([]byte(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	// The parsed app must be schedulable end to end (smoke).
	if part.App.TotalDataBytes() != 254 {
		t.Errorf("TDS = %d, want 254", part.App.TotalDataBytes())
	}
	if pa.FBSets != 2 {
		t.Errorf("FBSets = %d", pa.FBSets)
	}
}

func TestParseShippedExampleSpec(t *testing.T) {
	raw, err := os.ReadFile("../../examples/specs/radar.json")
	if err != nil {
		t.Fatal(err)
	}
	part, pa, err := spec.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if part.App.Name != "radar" || len(part.Clusters) != 3 {
		t.Errorf("radar spec parsed wrong: %s / %d clusters", part.App.Name, len(part.Clusters))
	}
	if pa.FBSetBytes != 1024 {
		t.Errorf("FB override lost: %d", pa.FBSetBytes)
	}
}

func TestFromPartitionRoundTrip(t *testing.T) {
	part, pa, err := spec.Parse([]byte(goodSpec))
	if err != nil {
		t.Fatal(err)
	}
	sp := spec.FromPartition(part, pa)
	raw, err := sp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	part2, pa2, err := spec.Parse(raw)
	if err != nil {
		t.Fatalf("%v\njson:\n%s", err, raw)
	}
	if part2.App.TotalDataBytes() != part.App.TotalDataBytes() ||
		part2.App.NumKernels() != part.App.NumKernels() ||
		len(part2.Clusters) != len(part.Clusters) {
		t.Error("round trip changed the application")
	}
	if pa2.FBSetBytes != pa.FBSetBytes || pa2.CMWords != pa.CMWords {
		t.Error("round trip changed the machine")
	}
	if !part2.App.IsStreamed("tile") {
		t.Error("streamed flag lost in round trip")
	}
}

func TestDumpAllPaperWorkloads(t *testing.T) {
	for _, e := range workloads.All() {
		sp := spec.FromPartition(e.Part, e.Arch)
		raw, err := sp.Marshal()
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		part, _, err := spec.Parse(raw)
		if err != nil {
			t.Fatalf("%s: re-parse: %v", e.Name, err)
		}
		if part.App.TotalDataBytes() != e.Part.App.TotalDataBytes() {
			t.Errorf("%s: TDS changed in export round trip", e.Name)
		}
	}
}
