package stream

import (
	"context"
	"fmt"
	"testing"

	"cds/internal/spec"
	"cds/internal/workloads"
)

// benchLog returns a long bursty arrival log: a fixed generated
// scenario (15 segments) replayed several times with renamed content,
// modelling a stream of similar-but-distinct bursts. Every segment
// fingerprints differently, so a cold plan runs CDS on all of them —
// the honest from-scratch baseline for the delta comparison.
func benchLog(b *testing.B) *Log {
	b.Helper()
	a := workloads.GenArrivals(21, 1)
	base, err := Split(a.Spec, a.SegClusters, a.ArriveAt)
	if err != nil {
		b.Fatal(err)
	}
	lg := &Log{Name: "bench", Iterations: base.Iterations, Arch: base.Arch}
	at := 0
	for r := 0; r < 6; r++ {
		prefix := fmt.Sprintf("r%d.", r)
		for si := range base.Segments {
			seg := &base.Segments[si]
			cp := Segment{
				Name:     prefix + base.SegmentName(si),
				At:       at + seg.At,
				Clusters: append([]int(nil), seg.Clusters...),
			}
			for _, d := range seg.Data {
				d.Name = prefix + d.Name
				cp.Data = append(cp.Data, d)
			}
			for _, k := range seg.Kernels {
				nk := spec.Kernel{
					Name:          prefix + k.Name,
					ContextWords:  k.ContextWords,
					ComputeCycles: k.ComputeCycles,
				}
				if k.ContextGroup != "" {
					nk.ContextGroup = prefix + k.ContextGroup
				}
				for _, in := range k.Inputs {
					nk.Inputs = append(nk.Inputs, prefix+in)
				}
				for _, out := range k.Outputs {
					nk.Outputs = append(nk.Outputs, prefix+out)
				}
				cp.Kernels = append(cp.Kernels, nk)
			}
			lg.Segments = append(lg.Segments, cp)
		}
		at = lg.Segments[len(lg.Segments)-1].At + 1000
	}
	if err := lg.Validate(); err != nil {
		b.Fatal(err)
	}
	return lg
}

// BenchmarkStreamReplanScratch prices a full from-scratch plan of the
// arrival log: every segment runs CDS. This is what an online scheduler
// without the fingerprint memo pays on every arrival.
func BenchmarkStreamReplanScratch(b *testing.B) {
	b.ReportAllocs()
	lg := benchLog(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, err := NewPlanner(0).Plan(ctx, lg)
		if err != nil {
			b.Fatal(err)
		}
		if plan.Replanned != len(lg.Segments) {
			b.Fatalf("scratch plan replanned %d of %d segments", plan.Replanned, len(lg.Segments))
		}
	}
}

// BenchmarkStreamReplanTail prices the delta path: the planner's memo
// is warm with the whole log, and each iteration mutates only the tail
// segment (a fresh compute cost, so the tail always misses) before
// replanning. Only one segment runs CDS; the prefix is a memo walk.
// The ratio against BenchmarkStreamReplanScratch is the acceptance
// number for delta replanning (target ≥10× on tail-only changes).
func BenchmarkStreamReplanTail(b *testing.B) {
	b.ReportAllocs()
	lg := benchLog(b)
	ctx := context.Background()
	pl := NewPlanner(0)
	if _, err := pl.Plan(ctx, lg); err != nil {
		b.Fatal(err)
	}
	tail := &lg.Segments[len(lg.Segments)-1]
	base := tail.Kernels[0].ComputeCycles
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tail.Kernels[0].ComputeCycles = base + 1 + i
		plan, err := pl.Plan(ctx, lg)
		if err != nil {
			b.Fatal(err)
		}
		if plan.Replanned != 1 || plan.Reused != len(lg.Segments)-1 {
			b.Fatalf("tail replan ran CDS on %d segments (reused %d), want 1 (%d)",
				plan.Replanned, plan.Reused, len(lg.Segments)-1)
		}
	}
}
