// Package stream is the online scheduler: kernels arrive as a stream of
// segments instead of a whole application known at t=0, and the planner
// (1) schedules each segment with the Complete Data Scheduler as it
// arrives, (2) memoizes each segment's schedule under a content
// fingerprint so a changed stream tail replans only from the first
// divergent segment (delta replanning), and (3) executes the stitched
// visit sequence under internal/sim's streaming model, where context
// words for the next visit are prefetched on the DMA channel during the
// current visit's compute window when FB/CM residency permits.
//
// The streaming semantics are segment-local: each segment is planned as
// a self-contained sub-application (data produced by an earlier segment
// and consumed later travels through external memory — the later
// segment sees it as an external input), so a segment's schedule is a
// pure function of (machine, iteration count, segment content). That
// purity is what makes the fingerprint memo sound, makes incremental
// output byte-identical to from-scratch planning, and makes a
// single-segment stream at t=0 exactly the static CDS schedule — the
// differential oracle internal/diffuzz checks.
package stream

import (
	"encoding/json"
	"fmt"

	"cds/internal/arch"
	"cds/internal/scherr"
	"cds/internal/spec"
)

// Segment is one burst of the kernel stream: a self-contained
// sub-application (data + kernels + cluster decomposition, in
// internal/spec's vocabulary) arriving at cycle At. A segment must
// declare every datum its kernels reference; a datum produced by an
// earlier segment is re-declared here and read back from external
// memory.
type Segment struct {
	// Name labels the segment in plans and traces; empty gets "seg<i>".
	Name string `json:"name,omitempty"`
	// At is the arrival cycle: no transfer for this segment's visits may
	// issue earlier. Arrivals must be nondecreasing across the log.
	At       int           `json:"at"`
	Data     []spec.Datum  `json:"data,omitempty"`
	Kernels  []spec.Kernel `json:"kernels"`
	Clusters []int         `json:"clusters"`
}

// Log is a full arrival log: the stream header (name, iteration count,
// machine overrides — fixed up front) plus the ordered segments.
type Log struct {
	Name       string     `json:"name"`
	Iterations int        `json:"iterations"`
	Arch       *spec.Arch `json:"arch,omitempty"`
	Segments   []Segment  `json:"segments"`
}

// invalid builds a field-path validation error matching
// scherr.ErrInvalidSpec, mirroring internal/spec's style.
func invalid(path, format string, args ...any) error {
	return fmt.Errorf("stream: %w: %s: %s", scherr.ErrInvalidSpec, path, fmt.Sprintf(format, args...))
}

// Params returns the effective machine for the log: M1 with the
// header's overrides applied, exactly as spec.Build resolves them.
func (lg *Log) Params() arch.Params {
	pa := arch.M1()
	if lg.Arch != nil {
		if lg.Arch.FBSetBytes > 0 {
			pa.FBSetBytes = lg.Arch.FBSetBytes
		}
		if lg.Arch.CMWords > 0 {
			pa.CMWords = lg.Arch.CMWords
		}
	}
	return pa
}

// SegmentName returns segment i's display name.
func (lg *Log) SegmentName(i int) string {
	if lg.Segments[i].Name != "" {
		return lg.Segments[i].Name
	}
	return fmt.Sprintf("seg%d", i)
}

// validateHeader checks the log-level fields and the arrival ordering
// but not the segments' sub-specs. Plan leans on it for the hot replan
// path: segment content is validated on the memo-miss path (Build
// re-validates before scheduling), and a memo hit proves the identical
// content already built cleanly once — re-validating every unchanged
// segment on every replan would dominate delta planning.
func (lg *Log) validateHeader() error {
	if lg.Iterations < 1 {
		return invalid("iterations", "must be >= 1, got %d", lg.Iterations)
	}
	if len(lg.Segments) == 0 {
		return invalid("segments", "must hold at least one segment")
	}
	prevAt := 0
	for i := range lg.Segments {
		seg := &lg.Segments[i]
		if seg.At < 0 {
			return invalid(fmt.Sprintf("segments[%d].at", i), "must not be negative, got %d", seg.At)
		}
		if seg.At < prevAt {
			return invalid(fmt.Sprintf("segments[%d].at", i), "arrivals must be nondecreasing: %d after %d", seg.At, prevAt)
		}
		prevAt = seg.At
	}
	return nil
}

// Validate checks the log's header and arrival ordering, and each
// segment's sub-spec field-by-field. All rejections match
// scherr.ErrInvalidSpec.
func (lg *Log) Validate() error {
	if err := lg.validateHeader(); err != nil {
		return err
	}
	for i := range lg.Segments {
		if err := lg.segmentSpec(i).Validate(); err != nil {
			return fmt.Errorf("stream: segments[%d]: %w", i, err)
		}
	}
	return nil
}

// segmentSpec materializes segment i as a self-contained spec document.
func (lg *Log) segmentSpec(i int) *spec.Spec {
	seg := &lg.Segments[i]
	return &spec.Spec{
		Name:       lg.SegmentName(i),
		Iterations: lg.Iterations,
		Arch:       lg.Arch,
		Data:       seg.Data,
		Kernels:    seg.Kernels,
		Clusters:   seg.Clusters,
	}
}

// ParseLog decodes and validates a JSON arrival log. Malformed JSON and
// validation failures both match scherr.ErrInvalidSpec.
func ParseLog(raw []byte) (*Log, error) {
	var lg Log
	if err := json.Unmarshal(raw, &lg); err != nil {
		return nil, fmt.Errorf("stream: %w: %w", scherr.ErrInvalidSpec, err)
	}
	if err := lg.Validate(); err != nil {
		return nil, err
	}
	return &lg, nil
}

// Marshal renders the log as indented JSON.
func (lg *Log) Marshal() ([]byte, error) {
	return json.MarshalIndent(lg, "", "  ")
}

// FromSpec wraps a whole application spec as a single-segment log
// arriving at cycle at — the fully-known-in-advance stream. Planning it
// reproduces the static CDS schedule exactly.
func FromSpec(sp *spec.Spec, at int) *Log {
	return &Log{
		Name:       sp.Name,
		Iterations: sp.Iterations,
		Arch:       sp.Arch,
		Segments: []Segment{{
			Name:     sp.Name,
			At:       at,
			Data:     sp.Data,
			Kernels:  sp.Kernels,
			Clusters: sp.Clusters,
		}},
	}
}

// Split slices a whole application spec into an arrival log: sizes[i]
// consecutive clusters become segment i, arriving at ats[i]. Each
// segment declares every datum its kernels reference (copying the
// declaration from the spec), so cross-segment dataflow becomes
// external traffic, matching the streaming semantics. A datum produced
// in one segment and consumed in a later one is marked Final in its
// declaration — the producing segment must write it back to external
// memory for the consumer to load — so the streamed app's storage
// semantics stay consistent (Merged reflects the same marking).
func Split(sp *spec.Spec, sizes []int, ats []int) (*Log, error) {
	if len(sizes) == 0 {
		return nil, invalid("sizes", "must name at least one segment")
	}
	if len(ats) != len(sizes) {
		return nil, invalid("ats", "got %d arrival times for %d segments", len(ats), len(sizes))
	}
	total := 0
	for _, n := range sizes {
		if n < 1 {
			return nil, invalid("sizes", "segment sizes must be >= 1, got %d", n)
		}
		total += n
	}
	if total != len(sp.Clusters) {
		return nil, invalid("sizes", "sizes cover %d of %d clusters", total, len(sp.Clusters))
	}
	decl := make(map[string]spec.Datum, len(sp.Data))
	for _, d := range sp.Data {
		decl[d.Name] = d
	}
	// Kernel -> segment map, then mark data crossing a segment boundary
	// (produced in one segment, consumed in a later one) Final.
	segOfKernel := make([]int, len(sp.Kernels))
	{
		ci, ki := 0, 0
		for si, n := range sizes {
			for c := 0; c < n; c++ {
				for k := 0; k < sp.Clusters[ci]; k++ {
					segOfKernel[ki] = si
					ki++
				}
				ci++
			}
		}
	}
	prodSeg := map[string]int{}
	lastConsSeg := map[string]int{}
	for ki, k := range sp.Kernels {
		for _, out := range k.Outputs {
			prodSeg[out] = segOfKernel[ki]
		}
		for _, in := range k.Inputs {
			if segOfKernel[ki] > lastConsSeg[in] {
				lastConsSeg[in] = segOfKernel[ki]
			}
		}
	}
	for name, ps := range prodSeg {
		if lastConsSeg[name] > ps {
			d := decl[name]
			d.Final = true
			decl[name] = d
		}
	}
	lg := &Log{Name: sp.Name, Iterations: sp.Iterations, Arch: sp.Arch}
	ci, ki := 0, 0
	for si, n := range sizes {
		seg := Segment{Name: fmt.Sprintf("%s/seg%d", sp.Name, si), At: ats[si]}
		seen := map[string]bool{}
		for c := 0; c < n; c++ {
			kn := sp.Clusters[ci]
			seg.Clusters = append(seg.Clusters, kn)
			for k := 0; k < kn; k++ {
				kernel := sp.Kernels[ki]
				seg.Kernels = append(seg.Kernels, kernel)
				for _, name := range append(append([]string{}, kernel.Inputs...), kernel.Outputs...) {
					if seen[name] {
						continue
					}
					seen[name] = true
					d, ok := decl[name]
					if !ok {
						return nil, invalid("spec", "kernel %q references undeclared datum %q", kernel.Name, name)
					}
					seg.Data = append(seg.Data, d)
				}
				ki++
			}
			ci++
		}
		lg.Segments = append(lg.Segments, seg)
	}
	if err := lg.Validate(); err != nil {
		return nil, err
	}
	return lg, nil
}

// Merged folds the log back into one whole-application spec — the
// offline view a static scheduler gets when every arrival is known at
// t=0. Duplicate datum declarations across segments must agree; kernel
// names must be globally unique (spec validation enforces that).
func (lg *Log) Merged() (*spec.Spec, error) {
	sp := &spec.Spec{Name: lg.Name, Iterations: lg.Iterations, Arch: lg.Arch}
	declared := map[string]spec.Datum{}
	for i := range lg.Segments {
		seg := &lg.Segments[i]
		for _, d := range seg.Data {
			if prev, ok := declared[d.Name]; ok {
				if prev != d {
					return nil, invalid(fmt.Sprintf("segments[%d].data", i),
						"datum %q re-declared with different fields", d.Name)
				}
				continue
			}
			declared[d.Name] = d
			sp.Data = append(sp.Data, d)
		}
		sp.Kernels = append(sp.Kernels, seg.Kernels...)
		sp.Clusters = append(sp.Clusters, seg.Clusters...)
	}
	return sp, nil
}
