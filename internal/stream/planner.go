package stream

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync"

	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/core"
	"cds/internal/rescache"
	"cds/internal/scherr"
	"cds/internal/sim"
	"cds/internal/trace"
)

// segmentKey fingerprints everything a segment's schedule is a pure
// function of: the machine, the iteration count and the segment's
// content (data, kernels, cluster decomposition). The arrival time is
// deliberately excluded — when a burst arrives changes the executor's
// Ready times, never the schedule's content. The canonical encoding
// mirrors rescache.KeyOf (domain-versioned prefix, uvarint numbers,
// length-prefixed strings), and the key shares rescache's Key type so
// serving layers can expose it alongside comparison keys.
func segmentKey(pa arch.Params, iterations int, seg *Segment) rescache.Key {
	h := sha256.New()
	var buf [binary.MaxVarintLen64]byte
	num := func(v int) {
		n := binary.PutUvarint(buf[:], uint64(int64(v)))
		h.Write(buf[:n])
	}
	str := func(s string) {
		num(len(s))
		h.Write([]byte(s))
	}
	flag := func(b bool) {
		if b {
			num(1)
		} else {
			num(0)
		}
	}
	str("cds/stream/segment/v1")
	str(pa.Name)
	num(pa.FBSetBytes)
	num(pa.FBSets)
	num(pa.CMWords)
	num(pa.BusBytes)
	num(pa.DMASetupCycles)
	num(pa.CtxWordBytes)
	num(pa.Rows)
	num(pa.Cols)
	num(iterations)
	num(len(seg.Data))
	for _, d := range seg.Data {
		str(d.Name)
		num(d.Size)
		flag(d.Final)
		flag(d.Streamed)
	}
	num(len(seg.Kernels))
	for _, k := range seg.Kernels {
		str(k.Name)
		num(k.ContextWords)
		num(k.ComputeCycles)
		str(k.ContextGroup)
		num(len(k.Inputs))
		for _, in := range k.Inputs {
			str(in)
		}
		num(len(k.Outputs))
		for _, out := range k.Outputs {
			str(out)
		}
	}
	num(len(seg.Clusters))
	for _, c := range seg.Clusters {
		num(c)
	}
	var key rescache.Key
	h.Sum(key[:0])
	return key
}

// segEntry is one memoized segment plan: the built sub-partition, its
// CDS schedule (both immutable once planned) and the per-cluster
// context working sets the prefetch residency check needs.
type segEntry struct {
	part       *app.Partition
	sched      *core.Schedule
	groupWords []int // indexed by the segment-local cluster index
}

// memo is the bounded LRU behind delta replanning. It is NOT shared
// process-wide: each Planner owns one, so a fresh Planner is a
// from-scratch planner (the golden byte-identity test relies on that).
type memo struct {
	max     int
	mu      sync.Mutex
	entries map[rescache.Key]*list.Element
	order   *list.List // front = least recently used
}

type memoItem struct {
	key rescache.Key
	ent *segEntry
}

func newMemo(max int) *memo {
	return &memo{max: max, entries: map[rescache.Key]*list.Element{}, order: list.New()}
}

func (m *memo) get(k rescache.Key) (*segEntry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[k]
	if !ok {
		return nil, false
	}
	m.order.MoveToBack(el)
	return el.Value.(memoItem).ent, true
}

func (m *memo) put(k rescache.Key, e *segEntry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[k]; ok {
		m.order.MoveToBack(el)
		el.Value = memoItem{k, e}
		return
	}
	m.entries[k] = m.order.PushBack(memoItem{k, e})
	for len(m.entries) > m.max {
		el := m.order.Front()
		m.order.Remove(el)
		delete(m.entries, el.Value.(memoItem).key)
	}
}

func (m *memo) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// DefaultMemoSegments bounds a planner's memo when no size is given:
// enough for many evolving streams without pinning every segment a
// long-lived daemon ever saw.
const DefaultMemoSegments = 256

// Planner is the incremental stream scheduler. Each segment is planned
// with the Complete Data Scheduler as a self-contained sub-application
// and memoized under its content fingerprint; replanning a stream whose
// tail changed reuses every unchanged segment's schedule and re-runs
// CDS only for the divergent segments. Safe for concurrent use.
type Planner struct {
	memo *memo
}

// NewPlanner returns a planner with a bounded segment memo (memoSize
// <= 0 selects DefaultMemoSegments).
func NewPlanner(memoSize int) *Planner {
	if memoSize <= 0 {
		memoSize = DefaultMemoSegments
	}
	return &Planner{memo: newMemo(memoSize)}
}

// MemoLen reports how many segment schedules are resident.
func (pl *Planner) MemoLen() int { return pl.memo.len() }

// SegmentPlan is one segment's slice of a Plan.
type SegmentPlan struct {
	// Name and At echo the segment's label and arrival cycle.
	Name string
	At   int
	// Fingerprint is the content key the segment's schedule is memoized
	// under (see segmentKey).
	Fingerprint rescache.Key
	// Reused reports whether this Plan call took the schedule from the
	// memo (true) or ran CDS for it (false).
	Reused bool
	// RF is the segment-local context reuse factor CDS settled on.
	RF int
	// Part and Schedule are the segment's sub-application and its CDS
	// schedule, with segment-local cluster indices and FB sets. Both are
	// shared with the memo and must not be mutated.
	Part     *app.Partition
	Schedule *core.Schedule
}

// Plan is the stitched output of planning one arrival log: the global
// visit sequence (segment-local schedules concatenated in arrival
// order, cluster indices offset and FB sets rotated so consecutive
// segments keep alternating sets) plus the per-visit streaming inputs
// the simulator consumes.
type Plan struct {
	Name       string
	Arch       arch.Params
	Iterations int
	Segments   []SegmentPlan
	// Schedule is the stitched visit sequence (Scheduler "stream"). Its
	// P/Info fields are nil — per-segment invariants are checked against
	// the segments' own schedules, stream-level invariants against the
	// streamed timeline (verify.Stream).
	Schedule *core.Schedule
	// StreamVisits parallels Schedule.Visits: each visit's Ready cycle
	// (its segment's arrival) and context working set.
	StreamVisits []sim.StreamVisit
	// Reused and Replanned count this call's memo hits and CDS runs.
	Reused, Replanned int
}

// simEval wires the event-driven simulator into the CDS RF guard, the
// same evaluator the facade uses (core cannot import internal/sim).
func simEval(s *core.Schedule) (int, error) {
	r, err := sim.Run(s)
	if err != nil {
		return 0, err
	}
	return r.TotalCycles, nil
}

// groupWordsOf computes each cluster's context working set: the words
// of its kernels' distinct context groups (a group shared by several
// kernels counts once, at its largest declared volume).
func groupWordsOf(part *app.Partition) []int {
	out := make([]int, len(part.Clusters))
	for ci, c := range part.Clusters {
		words := map[string]int{}
		for _, ki := range c.Kernels {
			k := part.App.Kernels[ki]
			g := k.CtxGroup()
			if k.ContextWords > words[g] {
				words[g] = k.ContextWords
			}
		}
		for _, w := range words {
			out[ci] += w
		}
	}
	return out
}

// Plan schedules the arrival log. Unchanged segments (by content
// fingerprint) reuse their memoized schedules; divergent segments run
// CDS. The output is a pure function of the log alone — byte-identical
// whether the memo was cold or warm (the golden test pins that).
func (pl *Planner) Plan(ctx context.Context, lg *Log) (*Plan, error) {
	// Header-only validation: segment content is checked on the miss
	// path (Build validates the sub-spec), and a memo hit proves the
	// identical content already built cleanly — see validateHeader.
	if err := lg.validateHeader(); err != nil {
		return nil, err
	}
	pa := lg.Params()
	plan := &Plan{Name: lg.Name, Arch: pa, Iterations: lg.Iterations}
	// Pass 1: fingerprint every segment and resolve its schedule (memo
	// hit or CDS run). Stitching is deferred so the visit slices can be
	// sized exactly — on the hot replan path (one divergent segment in
	// a long log) repeated append growth would otherwise dominate.
	ents := make([]*segEntry, len(lg.Segments))
	keys := make([]rescache.Key, len(lg.Segments))
	hits := make([]bool, len(lg.Segments))
	total := 0
	for i := range lg.Segments {
		if err := scherr.FromContext(ctx); err != nil {
			return nil, err
		}
		key := segmentKey(pa, lg.Iterations, &lg.Segments[i])
		ent, hit := pl.memo.get(key)
		if hit {
			plan.Reused++
		} else {
			part, spa, err := lg.segmentSpec(i).Build()
			if err != nil {
				return nil, fmt.Errorf("stream: segment %q: %w", lg.SegmentName(i), err)
			}
			sched, err := (core.CompleteDataScheduler{Eval: simEval}).ScheduleCtx(ctx, spa, part)
			if err != nil {
				return nil, fmt.Errorf("stream: segment %q: %w", lg.SegmentName(i), err)
			}
			ent = &segEntry{part: part, sched: sched, groupWords: groupWordsOf(part)}
			pl.memo.put(key, ent)
			plan.Replanned++
		}
		ents[i], keys[i], hits[i] = ent, key, hit
		total += len(ent.sched.Visits)
	}
	// Pass 2 — stitch: offset each segment's cluster indices to their
	// global positions and rotate its FB sets so consecutive segments
	// keep alternating sets (a uniform rotation preserves every
	// same-set relation CDS planned under, so the schedule content is
	// untouched — only the labels move).
	visits := make([]core.Visit, 0, total)
	plan.StreamVisits = make([]sim.StreamVisit, 0, total)
	plan.Segments = make([]SegmentPlan, 0, len(lg.Segments))
	clusterOff := 0
	for i := range lg.Segments {
		seg, ent := &lg.Segments[i], ents[i]
		setOff := clusterOff % pa.FBSets
		for _, v := range ent.sched.Visits {
			gv := v
			gv.Cluster = v.Cluster + clusterOff
			gv.Set = (v.Set + setOff) % pa.FBSets
			plan.StreamVisits = append(plan.StreamVisits, sim.StreamVisit{
				Ready:      seg.At,
				GroupWords: ent.groupWords[v.Cluster],
			})
			visits = append(visits, gv)
		}
		plan.Segments = append(plan.Segments, SegmentPlan{
			Name:        lg.SegmentName(i),
			At:          seg.At,
			Fingerprint: keys[i],
			Reused:      hits[i],
			RF:          ent.sched.RF,
			Part:        ent.part,
			Schedule:    ent.sched,
		})
		clusterOff += len(seg.Clusters)
	}
	plan.Schedule = &core.Schedule{
		Scheduler:      "stream",
		Arch:           pa,
		Visits:         visits,
		InPlaceRelease: true,
	}
	return plan, nil
}

// Run simulates the plan under the streaming model, with or without
// context prefetch.
func (p *Plan) Run(prefetch bool) (*sim.Result, error) {
	return sim.RunStream(p.Schedule, sim.StreamOpts{Visits: p.StreamVisits, Prefetch: prefetch})
}

// Trace simulates the plan while recording the timeline.
func (p *Plan) Trace(prefetch bool, label string) (*sim.Result, *trace.Timeline, error) {
	return sim.TraceStream(p.Schedule, label, sim.StreamOpts{Visits: p.StreamVisits, Prefetch: prefetch})
}

// Opts returns the streaming simulator options for the plan.
func (p *Plan) Opts(prefetch bool) sim.StreamOpts {
	return sim.StreamOpts{Visits: p.StreamVisits, Prefetch: prefetch}
}

// MarshalCanonical renders the plan's content — everything that defines
// the schedule, nothing that records how it was obtained (memo hits are
// excluded) — as deterministic JSON. Delta-replanned and from-scratch
// plans of the same log must produce identical bytes; the golden test
// pins that.
func (p *Plan) MarshalCanonical() ([]byte, error) {
	type segDoc struct {
		Name        string `json:"name"`
		At          int    `json:"at"`
		Fingerprint string `json:"fingerprint"`
		RF          int    `json:"rf"`
	}
	doc := struct {
		Name       string            `json:"name"`
		Arch       arch.Params       `json:"arch"`
		Iterations int               `json:"iterations"`
		Segments   []segDoc          `json:"segments"`
		Visits     []core.Visit      `json:"visits"`
		Stream     []sim.StreamVisit `json:"stream"`
	}{
		Name:       p.Name,
		Arch:       p.Arch,
		Iterations: p.Iterations,
		Visits:     p.Schedule.Visits,
		Stream:     p.StreamVisits,
	}
	for _, s := range p.Segments {
		doc.Segments = append(doc.Segments, segDoc{
			Name: s.Name, At: s.At,
			Fingerprint: fmt.Sprintf("%x", s.Fingerprint), RF: s.RF,
		})
	}
	return json.Marshal(doc)
}
