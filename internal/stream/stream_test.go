package stream

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"cds/internal/core"
	"cds/internal/scherr"
	"cds/internal/spec"
	"cds/internal/verify"
	"cds/internal/workloads"
)

// testSpec is a small two-pipeline application: four single-kernel
// clusters where k0→k1 and k2→k3 chain through intermediates. Split at
// every cluster boundary, "mid" and "mid2" cross segments.
func testSpec() *spec.Spec {
	return &spec.Spec{
		Name:       "t",
		Iterations: 2,
		Data: []spec.Datum{
			{Name: "in", Size: 256},
			{Name: "mid", Size: 128},
			{Name: "out", Size: 64, Final: true},
			{Name: "in2", Size: 256},
			{Name: "mid2", Size: 128},
			{Name: "out2", Size: 64, Final: true},
		},
		Kernels: []spec.Kernel{
			{Name: "k0", ContextWords: 24, ComputeCycles: 400, Inputs: []string{"in"}, Outputs: []string{"mid"}},
			{Name: "k1", ContextWords: 16, ComputeCycles: 300, Inputs: []string{"mid"}, Outputs: []string{"out"}},
			{Name: "k2", ContextWords: 24, ComputeCycles: 400, Inputs: []string{"in2"}, Outputs: []string{"mid2"}},
			{Name: "k3", ContextWords: 16, ComputeCycles: 300, Inputs: []string{"mid2"}, Outputs: []string{"out2"}},
		},
		Clusters: []int{1, 1, 1, 1},
	}
}

func mustPlan(t *testing.T, pl *Planner, lg *Log) *Plan {
	t.Helper()
	p, err := pl.Plan(context.Background(), lg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// A single-segment stream at t=0 is the offline problem: the planner
// must reproduce the static CDS schedule visit-for-visit.
func TestPlanSingleSegmentMatchesStatic(t *testing.T) {
	sp := testSpec()
	plan := mustPlan(t, NewPlanner(0), FromSpec(sp, 0))

	part, pa, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	static, err := (core.CompleteDataScheduler{Eval: simEval}).Schedule(pa, part)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Schedule.Visits) != len(static.Visits) {
		t.Fatalf("stream plan has %d visits, static CDS %d", len(plan.Schedule.Visits), len(static.Visits))
	}
	for i, v := range static.Visits {
		if got := plan.Schedule.Visits[i]; got.Cluster != v.Cluster || got.Set != v.Set ||
			got.CtxWords != v.CtxWords || got.ComputeCycles != v.ComputeCycles {
			t.Errorf("visit %d differs: stream %+v static %+v", i, got, v)
		}
	}
	if plan.Segments[0].RF != static.RF {
		t.Errorf("RF = %d, static CDS chose %d", plan.Segments[0].RF, static.RF)
	}
}

// Split marks cross-segment intermediates Final (the producing segment
// must write them back for the consumer to load) and Merged folds the
// log back into a consistent whole-application view.
func TestSplitMarksCrossSegmentDataFinal(t *testing.T) {
	lg, err := Split(testSpec(), []int{1, 1, 1, 1}, []int{0, 10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range lg.Segments[0].Data {
		if d.Name == "mid" {
			found = true
			if !d.Final {
				t.Error("datum \"mid\" crosses segments 0->1 but is not marked Final")
			}
		}
	}
	if !found {
		t.Fatal("segment 0 does not declare datum \"mid\"")
	}
	m, err := lg.Merged()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Kernels) != 4 || len(m.Clusters) != 4 {
		t.Fatalf("merged spec has %d kernels/%d clusters, want 4/4", len(m.Kernels), len(m.Clusters))
	}
	// Splitting the merged view again must be stable: the Final marks
	// already agree, so round two changes nothing.
	lg2, err := Split(m, []int{1, 1, 1, 1}, []int{0, 10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := lg.Marshal()
	b2, _ := lg2.Marshal()
	if !bytes.Equal(b1, b2) {
		t.Error("Split(Merged(log)) differs from Split(spec)")
	}
}

// The golden delta test: replanning a stream whose tail changed, with a
// warm memo, must produce byte-identical output to a from-scratch
// planner on the same log.
func TestPlanDeltaByteIdenticalToScratch(t *testing.T) {
	lg, err := Split(testSpec(), []int{2, 2}, []int{0, 500})
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(0)
	first := mustPlan(t, pl, lg)
	if first.Reused != 0 || first.Replanned != 2 {
		t.Fatalf("cold plan reused/replanned = %d/%d, want 0/2", first.Reused, first.Replanned)
	}

	// Mutate the tail: the last segment's final kernel gets a different
	// compute cost.
	raw, err := lg.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	mut, err := ParseLog(raw)
	if err != nil {
		t.Fatal(err)
	}
	last := &mut.Segments[len(mut.Segments)-1]
	last.Kernels[len(last.Kernels)-1].ComputeCycles += 111

	warm := mustPlan(t, pl, mut)
	if warm.Reused != 1 || warm.Replanned != 1 {
		t.Errorf("delta plan reused/replanned = %d/%d, want 1/1", warm.Reused, warm.Replanned)
	}
	scratch := mustPlan(t, NewPlanner(0), mut)
	if scratch.Reused != 0 {
		t.Errorf("fresh planner reused %d segments", scratch.Reused)
	}

	wb, err := warm.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := scratch.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wb, sb) {
		t.Errorf("delta-replanned plan differs from from-scratch plan:\nwarm:    %s\nscratch: %s", wb, sb)
	}

	// Replanning the unmutated log again is a pure memo walk.
	again := mustPlan(t, pl, lg)
	if again.Replanned != 0 || again.Reused != 2 {
		t.Errorf("warm replan of unchanged log reused/replanned = %d/%d, want 2/0", again.Reused, again.Replanned)
	}
}

// The fingerprint covers content, not arrival time: moving a burst in
// time reuses its schedule; touching its content does not.
func TestSegmentKeyContentOnly(t *testing.T) {
	lg, err := Split(testSpec(), []int{2, 2}, []int{0, 500})
	if err != nil {
		t.Fatal(err)
	}
	pa := lg.Params()
	a := segmentKey(pa, lg.Iterations, &lg.Segments[1])

	shifted := lg.Segments[1]
	shifted.At += 10_000
	if b := segmentKey(pa, lg.Iterations, &shifted); a != b {
		t.Error("arrival-time shift changed the segment fingerprint")
	}
	mutated := lg.Segments[1]
	mutated.Kernels = append([]spec.Kernel{}, mutated.Kernels...)
	mutated.Kernels[0].ContextWords++
	if b := segmentKey(pa, lg.Iterations, &mutated); a == b {
		t.Error("kernel change did not move the segment fingerprint")
	}
	if b := segmentKey(pa, lg.Iterations+1, &lg.Segments[1]); a == b {
		t.Error("iteration change did not move the segment fingerprint")
	}
	pb := pa
	pb.CMWords *= 2
	if b := segmentKey(pb, lg.Iterations, &lg.Segments[1]); a == b {
		t.Error("machine change did not move the segment fingerprint")
	}
}

// The memo is bounded: with room for one segment, a two-segment working
// set thrashes rather than grows.
func TestPlannerMemoBounded(t *testing.T) {
	lg, err := Split(testSpec(), []int{2, 2}, []int{0, 500})
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(1)
	mustPlan(t, pl, lg)
	if n := pl.MemoLen(); n != 1 {
		t.Errorf("memo holds %d segments, bound is 1", n)
	}
	// Both segments replan every time — neither survives the other's
	// eviction.
	p := mustPlan(t, pl, lg)
	if p.Reused != 0 || p.Replanned != 2 {
		t.Errorf("thrashing memo reused/replanned = %d/%d, want 0/2", p.Reused, p.Replanned)
	}
}

// A planned stream must satisfy the prefetch invariant family, with and
// without prefetch, and the prefetch makespan must not exceed the
// serialized baseline.
func TestPlanStreamsVerify(t *testing.T) {
	lg, err := Split(testSpec(), []int{1, 1, 1, 1}, []int{0, 50, 600, 700})
	if err != nil {
		t.Fatal(err)
	}
	plan := mustPlan(t, NewPlanner(0), lg)
	for _, prefetch := range []bool{false, true} {
		if err := verify.Stream(plan.Schedule, plan.Opts(prefetch)); err != nil {
			t.Errorf("prefetch=%v: %v", prefetch, err)
		}
	}
	serial, err := plan.Run(false)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := plan.Run(true)
	if err != nil {
		t.Fatal(err)
	}
	if pre.TotalCycles > serial.TotalCycles {
		t.Errorf("prefetch makespan %d exceeds serialized %d", pre.TotalCycles, serial.TotalCycles)
	}
}

// Generated arrival scenarios plan deterministically and stream-verify;
// infeasible scenarios must fail identically across planners.
func TestPlanGeneratedArrivals(t *testing.T) {
	planned := 0
	for i := 0; i < 12; i++ {
		a := workloads.GenArrivals(7, i)
		lg, err := Split(a.Spec, a.SegClusters, a.ArriveAt)
		if err != nil {
			t.Fatalf("%s: split: %v", a.Name, err)
		}
		p1, err1 := NewPlanner(0).Plan(context.Background(), lg)
		p2, err2 := NewPlanner(0).Plan(context.Background(), lg)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s: planners disagree: %v vs %v", a.Name, err1, err2)
		}
		if err1 != nil {
			continue // infeasible on its machine — legal for generated scenarios
		}
		planned++
		b1, _ := p1.MarshalCanonical()
		b2, _ := p2.MarshalCanonical()
		if !bytes.Equal(b1, b2) {
			t.Errorf("%s: non-deterministic plan", a.Name)
		}
		for _, prefetch := range []bool{false, true} {
			if err := verify.Stream(p1.Schedule, p1.Opts(prefetch)); err != nil {
				t.Errorf("%s prefetch=%v: %v", a.Name, prefetch, err)
			}
		}
	}
	if planned == 0 {
		t.Error("no generated scenario planned successfully; corpus too hostile")
	}
}

func TestParseLogRejections(t *testing.T) {
	cases := []struct {
		name string
		raw  string
	}{
		{"malformed", `{"name":`},
		{"no segments", `{"name":"x","iterations":1,"segments":[]}`},
		{"bad iterations", `{"name":"x","iterations":0,"segments":[{"at":0,"kernels":[],"clusters":[]}]}`},
		{"negative at", `{"name":"x","iterations":1,"segments":[{"at":-1,"kernels":[],"clusters":[]}]}`},
	}
	for _, c := range cases {
		if _, err := ParseLog([]byte(c.raw)); !errors.Is(err, scherr.ErrInvalidSpec) {
			t.Errorf("%s: err = %v, want ErrInvalidSpec", c.name, err)
		}
	}

	lg, err := Split(testSpec(), []int{2, 2}, []int{0, 500})
	if err != nil {
		t.Fatal(err)
	}
	lg.Segments[1].At = 0
	lg.Segments[0].At = 500
	if err := lg.Validate(); !errors.Is(err, scherr.ErrInvalidSpec) {
		t.Errorf("decreasing arrivals: err = %v, want ErrInvalidSpec", err)
	}
}

func TestSplitRejections(t *testing.T) {
	sp := testSpec()
	if _, err := Split(sp, nil, nil); !errors.Is(err, scherr.ErrInvalidSpec) {
		t.Error("empty sizes accepted")
	}
	if _, err := Split(sp, []int{4}, []int{0, 1}); !errors.Is(err, scherr.ErrInvalidSpec) {
		t.Error("mismatched ats accepted")
	}
	if _, err := Split(sp, []int{3}, []int{0}); !errors.Is(err, scherr.ErrInvalidSpec) {
		t.Error("partial cluster cover accepted")
	}
	if _, err := Split(sp, []int{0, 4}, []int{0, 1}); !errors.Is(err, scherr.ErrInvalidSpec) {
		t.Error("zero-size segment accepted")
	}
}
