package sweep

// The batch runner generalizes the single-workload FB sweep into
// arbitrary architecture x workload grids: every (arch, partition) point
// is one three-scheduler comparison, the points are independent, and a
// worker pool runs them concurrently. Results come back in job order and
// a failing point records its error instead of aborting the batch — a
// design-space exploration wants the 199 good points AND the one bad
// one, not an abort.

import (
	"context"
	"fmt"
	"io"

	"cds"
	"cds/internal/arch"
	"cds/internal/conc"
	"cds/internal/scherr"
	"cds/internal/workloads"
)

// Job is one grid point: a named (architecture, partition) pair.
type Job struct {
	Name string
	Arch arch.Params
	Part *cds.Part
}

// Outcome pairs a job with its comparison. Err is the per-point failure
// (nil on success); a batch never aborts on one bad point. With the
// comparison's own partial-result semantics, Cmp can be non-nil even
// when Err is set — the surviving schedulers' results are kept.
type Outcome struct {
	Job Job
	Cmp *cds.Comparison
	Err error
	// done marks jobs that actually ran (vs. skipped by cancellation).
	done bool
}

// Batch runs cds.CompareAll on every job across a bounded worker pool
// (workers <= 0 means one per CPU) and returns one Outcome per job, in
// job order regardless of completion order. It is BatchCtx with a
// background context.
func Batch(jobs []Job, workers int) []Outcome {
	return BatchCtx(context.Background(), jobs, workers)
}

// BatchCtx is the cancellable batch runner. Once ctx is done no new job
// starts; jobs that never ran come back with an Err matching
// scherr.ErrCanceled, so a canceled grid still reports which points were
// measured and which were abandoned. A panicking job records its
// *conc.PanicError in its own Outcome without killing sibling workers.
func BatchCtx(ctx context.Context, jobs []Job, workers int) []Outcome {
	out := make([]Outcome, len(jobs))
	for i := range jobs {
		out[i].Job = jobs[i]
	}
	if workers <= 0 {
		workers = conc.DefaultLimit()
	}
	// fn never returns an error: per-point failures (panics included,
	// via conc.Safe) are data. Only cancellation escapes the pool.
	_ = conc.ForEach(ctx, workers, len(jobs), func(i int) error {
		out[i].Err = conc.Safe(func() error {
			var err error
			out[i].Cmp, err = cds.CompareAllCtx(ctx, jobs[i].Arch, jobs[i].Part)
			return err
		})
		out[i].done = true
		return nil
	})
	if err := scherr.FromContext(ctx); err != nil {
		for i := range out {
			if !out[i].done && out[i].Err == nil {
				out[i].Err = err
			}
		}
	}
	return out
}

// NamedArch is one architecture column of a grid (e.g. an arch.Presets
// entry).
type NamedArch struct {
	Name   string
	Params arch.Params
}

// PresetArchs resolves architecture preset names (arch.Presets keys,
// e.g. "M1/4", "M1", "M2") into grid columns, skipping unknown names so
// a grid over a preset list degrades instead of panicking.
func PresetArchs(names ...string) []NamedArch {
	presets := arch.Presets()
	var out []NamedArch
	for _, name := range names {
		if p, ok := presets[name]; ok {
			out = append(out, NamedArch{Name: name, Params: p})
		}
	}
	return out
}

// Grid crosses architectures with workloads into a job list, named
// "<arch>/<workload>", workloads varying fastest. Each job runs the
// workload's partition on the GRID architecture (not the workload's
// Table 1 one) — that is the point of the cross product.
func Grid(archs []NamedArch, exps []workloads.Experiment) []Job {
	jobs := make([]Job, 0, len(archs)*len(exps))
	for _, na := range archs {
		for _, e := range exps {
			jobs = append(jobs, Job{
				Name: na.Name + "/" + e.Name,
				Arch: na.Params,
				Part: e.Part,
			})
		}
	}
	return jobs
}

// WriteBatch renders batch outcomes as a table: one row per job, errors
// inline so a partly-failed grid still reads as a grid.
func WriteBatch(w io.Writer, outcomes []Outcome) {
	fmt.Fprintf(w, "%-24s %8s %4s %10s %10s %8s\n", "job", "FB", "RF", "DS impr", "CDS impr", "DT/iter")
	for _, o := range outcomes {
		if o.Err != nil {
			fmt.Fprintf(w, "%-24s %8s  error: %v\n", o.Job.Name, arch.FormatSize(o.Job.Arch.FBSetBytes), o.Err)
			continue
		}
		ds, cdsImp := fmt.Sprintf("%.1f%%", o.Cmp.ImprovementDS), fmt.Sprintf("%.1f%%", o.Cmp.ImprovementCDS)
		if o.Cmp.BasicErr != nil {
			ds, cdsImp = "-", "-" // basic infeasible: no baseline
		}
		fmt.Fprintf(w, "%-24s %8s %4d %10s %10s %7dB\n",
			o.Job.Name, arch.FormatSize(o.Job.Arch.FBSetBytes), o.Cmp.RF, ds, cdsImp, o.Cmp.DTBytes)
	}
}

// CSVBatch writes batch outcomes as comma-separated values.
func CSVBatch(w io.Writer, outcomes []Outcome) {
	fmt.Fprintln(w, "job,fb_bytes,basic_feasible,rf,ds_improvement,cds_improvement,dt_bytes,error")
	for _, o := range outcomes {
		if o.Err != nil {
			fmt.Fprintf(w, "%s,%d,,,,,,%q\n", o.Job.Name, o.Job.Arch.FBSetBytes, o.Err.Error())
			continue
		}
		fmt.Fprintf(w, "%s,%d,%v,%d,%.2f,%.2f,%d,\n",
			o.Job.Name, o.Job.Arch.FBSetBytes, o.Cmp.BasicErr == nil, o.Cmp.RF,
			o.Cmp.ImprovementDS, o.Cmp.ImprovementCDS, o.Cmp.DTBytes)
	}
}
