package sweep

// The batch runner generalizes the single-workload FB sweep into
// arbitrary architecture x workload grids: every (arch, partition) point
// is one three-scheduler comparison, the points are independent, and a
// worker pool runs them concurrently. Results come back in job order and
// a failing point records its error instead of aborting the batch — a
// design-space exploration wants the 199 good points AND the one bad
// one, not an abort.

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"cds"
	"cds/internal/arch"
	"cds/internal/conc"
	"cds/internal/scherr"
	"cds/internal/workloads"
)

// Job is one grid point: a named (architecture, partition) pair.
type Job struct {
	Name string
	Arch arch.Params
	Part *cds.Part
}

// Outcome pairs a job with its comparison. Err is the per-point failure
// (nil on success); a batch never aborts on one bad point. With the
// comparison's own partial-result semantics, Cmp can be non-nil even
// when Err is set — the surviving schedulers' results are kept.
type Outcome struct {
	Job Job
	Cmp *cds.Comparison
	Err error
	// done marks jobs that actually ran (vs. skipped by cancellation).
	done bool
}

// Batch runs cds.CompareAll on every job across a bounded worker pool
// (workers <= 0 means one per CPU) and returns one Outcome per job, in
// job order regardless of completion order. It is BatchCtx with a
// background context.
func Batch(jobs []Job, workers int) []Outcome {
	return BatchCtx(context.Background(), jobs, workers)
}

// BatchCtx is the cancellable batch runner. Once ctx is done no new job
// starts; jobs that never ran come back with an Err matching
// scherr.ErrCanceled, so a canceled grid still reports which points were
// measured and which were abandoned. A panicking job records its
// *conc.PanicError in its own Outcome without killing sibling workers.
func BatchCtx(ctx context.Context, jobs []Job, workers int) []Outcome {
	return batchCtx(ctx, jobs, workers, nil)
}

// batchCtx is BatchCtx plus a per-completion observer: observe(out[i])
// fires from the worker goroutine as soon as job i finishes (it is never
// called for jobs skipped by cancellation). The journal rides on it so a
// crash loses at most the in-flight points. observe may be called
// concurrently; observers serialize internally.
func batchCtx(ctx context.Context, jobs []Job, workers int, observe func(Outcome)) []Outcome {
	out := make([]Outcome, len(jobs))
	for i := range jobs {
		out[i].Job = jobs[i]
	}
	if workers <= 0 {
		workers = conc.DefaultLimit()
	}
	// fn never returns an error: per-point failures (panics included,
	// via conc.Safe) are data. Only cancellation escapes the pool.
	_ = conc.ForEach(ctx, workers, len(jobs), func(i int) error {
		out[i].Err = conc.Safe(func() error {
			var err error
			out[i].Cmp, err = cds.CompareAllCtx(ctx, jobs[i].Arch, jobs[i].Part)
			return err
		})
		out[i].done = true
		if observe != nil {
			observe(out[i])
		}
		return nil
	})
	if err := scherr.FromContext(ctx); err != nil {
		for i := range out {
			if !out[i].done && out[i].Err == nil {
				out[i].Err = err
			}
		}
	}
	return out
}

// NamedArch is one architecture column of a grid (e.g. an arch.Presets
// entry).
type NamedArch struct {
	Name   string
	Params arch.Params
}

// PresetArchs resolves architecture preset names (arch.Presets keys,
// e.g. "M1/4", "M1", "M2") into grid columns. Unknown names are skipped
// so a grid over a preset list degrades instead of panicking, but they
// are RETURNED — callers must surface them, or a typoed -archs value
// silently shrinks the grid.
func PresetArchs(names ...string) (archs []NamedArch, skipped []string) {
	presets := arch.Presets()
	for _, name := range names {
		if p, ok := presets[name]; ok {
			archs = append(archs, NamedArch{Name: name, Params: p})
		} else {
			skipped = append(skipped, name)
		}
	}
	return archs, skipped
}

// Grid crosses architectures with workloads into a job list, named
// "<arch>/<workload>", workloads varying fastest. Each job runs the
// workload's partition on the GRID architecture (not the workload's
// Table 1 one) — that is the point of the cross product.
func Grid(archs []NamedArch, exps []workloads.Experiment) []Job {
	jobs := make([]Job, 0, len(archs)*len(exps))
	for _, na := range archs {
		for _, e := range exps {
			jobs = append(jobs, Job{
				Name: na.Name + "/" + e.Name,
				Arch: na.Params,
				Part: e.Part,
			})
		}
	}
	return jobs
}

// Row is one grid point's result flattened to the fields the reports
// (table, CSV, journal, schedd responses) need. Unlike Outcome it is
// self-contained and JSON-serializable, so a journaled row reconstructs
// its report line without re-running the point.
type Row struct {
	Job           string  `json:"job"`
	FBBytes       int     `json:"fb_bytes"`
	BasicFeasible bool    `json:"basic_feasible"`
	RF            int     `json:"rf"`
	DSImp         float64 `json:"ds_improvement"`
	CDSImp        float64 `json:"cds_improvement"`
	DTBytes       int     `json:"dt_bytes"`
	// Err is the per-point failure text ("" on success). When set, the
	// comparison fields are meaningless and report as blank.
	Err string `json:"error,omitempty"`
}

// RowOf flattens one outcome into its report row.
func RowOf(o Outcome) Row {
	r := Row{Job: o.Job.Name, FBBytes: o.Job.Arch.FBSetBytes}
	if o.Err != nil {
		r.Err = o.Err.Error()
		return r
	}
	r.BasicFeasible = o.Cmp.BasicErr == nil
	r.RF = o.Cmp.RF
	r.DSImp = o.Cmp.ImprovementDS
	r.CDSImp = o.Cmp.ImprovementCDS
	r.DTBytes = o.Cmp.DTBytes
	return r
}

// Rows flattens a batch, one row per outcome in the same order.
func Rows(outcomes []Outcome) []Row {
	rows := make([]Row, len(outcomes))
	for i, o := range outcomes {
		rows[i] = RowOf(o)
	}
	return rows
}

// WriteBatch renders batch outcomes as a table: one row per job, errors
// inline so a partly-failed grid still reads as a grid.
func WriteBatch(w io.Writer, outcomes []Outcome) {
	WriteRows(w, Rows(outcomes))
}

// WriteRows renders report rows as the batch table.
func WriteRows(w io.Writer, rows []Row) {
	fmt.Fprintf(w, "%-24s %8s %4s %10s %10s %8s\n", "job", "FB", "RF", "DS impr", "CDS impr", "DT/iter")
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(w, "%-24s %8s  error: %s\n", r.Job, arch.FormatSize(r.FBBytes), r.Err)
			continue
		}
		ds, cdsImp := fmt.Sprintf("%.1f%%", r.DSImp), fmt.Sprintf("%.1f%%", r.CDSImp)
		if !r.BasicFeasible {
			ds, cdsImp = "-", "-" // basic infeasible: no baseline
		}
		fmt.Fprintf(w, "%-24s %8s %4d %10s %10s %7dB\n",
			r.Job, arch.FormatSize(r.FBBytes), r.RF, ds, cdsImp, r.DTBytes)
	}
}

// CSVBatch writes batch outcomes as comma-separated values.
func CSVBatch(w io.Writer, outcomes []Outcome) error {
	return CSVRows(w, Rows(outcomes))
}

// CSVRows writes report rows as CSV through encoding/csv, so job names
// and error texts containing commas, quotes or newlines stay one field
// instead of corrupting the table.
func CSVRows(w io.Writer, rows []Row) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"job", "fb_bytes", "basic_feasible", "rf", "ds_improvement", "cds_improvement", "dt_bytes", "error"}); err != nil {
		return err
	}
	for _, r := range rows {
		rec := []string{r.Job, strconv.Itoa(r.FBBytes), "", "", "", "", "", r.Err}
		if r.Err == "" {
			rec[2] = strconv.FormatBool(r.BasicFeasible)
			rec[3] = strconv.Itoa(r.RF)
			rec[4] = strconv.FormatFloat(r.DSImp, 'f', 2, 64)
			rec[5] = strconv.FormatFloat(r.CDSImp, 'f', 2, 64)
			rec[6] = strconv.Itoa(r.DTBytes)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
