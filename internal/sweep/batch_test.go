package sweep

import (
	"strings"
	"testing"

	"cds/internal/arch"
	"cds/internal/workloads"
)

func TestBatchOrderAndErrorCapture(t *testing.T) {
	e1 := workloads.E1()
	mpeg := workloads.MPEG()
	bad := arch.M1()
	bad.FBSetBytes = -1 // invalid params: this point must fail, alone
	jobs := []Job{
		{Name: "e1", Arch: e1.Arch, Part: e1.Part},
		{Name: "broken", Arch: bad, Part: mpeg.Part},
		{Name: "mpeg", Arch: mpeg.Arch, Part: mpeg.Part},
	}
	outcomes := Batch(jobs, 2)
	if len(outcomes) != len(jobs) {
		t.Fatalf("outcomes = %d, want %d", len(outcomes), len(jobs))
	}
	for i, o := range outcomes {
		if o.Job.Name != jobs[i].Name {
			t.Errorf("outcome %d is %q, want %q (order must match jobs)", i, o.Job.Name, jobs[i].Name)
		}
	}
	if outcomes[0].Err != nil || outcomes[2].Err != nil {
		t.Errorf("good points failed: %v / %v", outcomes[0].Err, outcomes[2].Err)
	}
	if outcomes[1].Err == nil {
		t.Error("invalid arch point succeeded; its error must be captured")
	}
	if outcomes[0].Cmp == nil || outcomes[0].Cmp.ImprovementCDS <= 0 {
		t.Error("e1 comparison missing or degenerate")
	}
}

// TestBatchDeterministic pins that worker interleaving cannot change
// the numbers: two runs of the same grid are identical.
func TestBatchDeterministic(t *testing.T) {
	jobs := Grid(PresetArchs("M1/4", "M1"), workloads.All()[:4])
	a := Batch(jobs, 4)
	b := Batch(jobs, 1)
	for i := range a {
		if (a[i].Err == nil) != (b[i].Err == nil) {
			t.Fatalf("%s: error status diverged", a[i].Job.Name)
		}
		if a[i].Err != nil {
			continue
		}
		if a[i].Cmp.ImprovementCDS != b[i].Cmp.ImprovementCDS ||
			a[i].Cmp.ImprovementDS != b[i].Cmp.ImprovementDS ||
			a[i].Cmp.RF != b[i].Cmp.RF {
			t.Fatalf("%s: parallel and serial batches disagree", a[i].Job.Name)
		}
	}
}

func TestGridAndPresets(t *testing.T) {
	archs := PresetArchs("M1", "nope", "M2")
	if len(archs) != 2 {
		t.Fatalf("PresetArchs kept %d presets, want 2 (unknown skipped)", len(archs))
	}
	exps := workloads.All()[:3]
	jobs := Grid(archs, exps)
	if len(jobs) != 6 {
		t.Fatalf("grid has %d jobs, want 6", len(jobs))
	}
	if jobs[0].Name != "M1/"+exps[0].Name || jobs[3].Name != "M2/"+exps[0].Name {
		t.Errorf("grid naming off: %q, %q", jobs[0].Name, jobs[3].Name)
	}
	if jobs[3].Arch.Name != "M2" {
		t.Errorf("grid job 3 runs on %q, want the M2 preset", jobs[3].Arch.Name)
	}
}

func TestBatchRendering(t *testing.T) {
	e := workloads.E1()
	bad := arch.M1()
	bad.FBSetBytes = -1
	outcomes := Batch([]Job{
		{Name: "ok", Arch: e.Arch, Part: e.Part},
		{Name: "bad", Arch: bad, Part: e.Part},
	}, 0)

	var w strings.Builder
	WriteBatch(&w, outcomes)
	out := w.String()
	for _, want := range []string{"job", "ok", "bad", "error:"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteBatch output missing %q:\n%s", want, out)
		}
	}
	var c strings.Builder
	CSVBatch(&c, outcomes)
	lines := strings.Split(strings.TrimSpace(c.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSVBatch has %d lines, want 3", len(lines))
	}
	if !strings.Contains(lines[2], "\"") {
		t.Errorf("error row lacks quoted error: %q", lines[2])
	}
}
