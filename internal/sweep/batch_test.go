package sweep

import (
	"encoding/csv"
	"strings"
	"testing"

	"cds/internal/arch"
	"cds/internal/workloads"
)

func TestBatchOrderAndErrorCapture(t *testing.T) {
	e1 := workloads.E1()
	mpeg := workloads.MPEG()
	bad := arch.M1()
	bad.FBSetBytes = -1 // invalid params: this point must fail, alone
	jobs := []Job{
		{Name: "e1", Arch: e1.Arch, Part: e1.Part},
		{Name: "broken", Arch: bad, Part: mpeg.Part},
		{Name: "mpeg", Arch: mpeg.Arch, Part: mpeg.Part},
	}
	outcomes := Batch(jobs, 2)
	if len(outcomes) != len(jobs) {
		t.Fatalf("outcomes = %d, want %d", len(outcomes), len(jobs))
	}
	for i, o := range outcomes {
		if o.Job.Name != jobs[i].Name {
			t.Errorf("outcome %d is %q, want %q (order must match jobs)", i, o.Job.Name, jobs[i].Name)
		}
	}
	if outcomes[0].Err != nil || outcomes[2].Err != nil {
		t.Errorf("good points failed: %v / %v", outcomes[0].Err, outcomes[2].Err)
	}
	if outcomes[1].Err == nil {
		t.Error("invalid arch point succeeded; its error must be captured")
	}
	if outcomes[0].Cmp == nil || outcomes[0].Cmp.ImprovementCDS <= 0 {
		t.Error("e1 comparison missing or degenerate")
	}
}

// TestBatchDeterministic pins that worker interleaving cannot change
// the numbers: two runs of the same grid are identical.
func TestBatchDeterministic(t *testing.T) {
	archs, _ := PresetArchs("M1/4", "M1")
	jobs := Grid(archs, workloads.All()[:4])
	a := Batch(jobs, 4)
	b := Batch(jobs, 1)
	for i := range a {
		if (a[i].Err == nil) != (b[i].Err == nil) {
			t.Fatalf("%s: error status diverged", a[i].Job.Name)
		}
		if a[i].Err != nil {
			continue
		}
		if a[i].Cmp.ImprovementCDS != b[i].Cmp.ImprovementCDS ||
			a[i].Cmp.ImprovementDS != b[i].Cmp.ImprovementDS ||
			a[i].Cmp.RF != b[i].Cmp.RF {
			t.Fatalf("%s: parallel and serial batches disagree", a[i].Job.Name)
		}
	}
}

func TestGridAndPresets(t *testing.T) {
	archs, skipped := PresetArchs("M1", "nope", "M2")
	if len(archs) != 2 {
		t.Fatalf("PresetArchs kept %d presets, want 2 (unknown skipped)", len(archs))
	}
	if len(skipped) != 1 || skipped[0] != "nope" {
		t.Fatalf("PresetArchs skipped = %v, want [nope] — unknown names must be reported, not dropped", skipped)
	}
	exps := workloads.All()[:3]
	jobs := Grid(archs, exps)
	if len(jobs) != 6 {
		t.Fatalf("grid has %d jobs, want 6", len(jobs))
	}
	if jobs[0].Name != "M1/"+exps[0].Name || jobs[3].Name != "M2/"+exps[0].Name {
		t.Errorf("grid naming off: %q, %q", jobs[0].Name, jobs[3].Name)
	}
	if jobs[3].Arch.Name != "M2" {
		t.Errorf("grid job 3 runs on %q, want the M2 preset", jobs[3].Arch.Name)
	}
}

func TestBatchRendering(t *testing.T) {
	e := workloads.E1()
	bad := arch.M1()
	bad.FBSetBytes = -1
	outcomes := Batch([]Job{
		{Name: "ok", Arch: e.Arch, Part: e.Part},
		{Name: "bad", Arch: bad, Part: e.Part},
	}, 0)

	var w strings.Builder
	WriteBatch(&w, outcomes)
	out := w.String()
	for _, want := range []string{"job", "ok", "bad", "error:"} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteBatch output missing %q:\n%s", want, out)
		}
	}
	var c strings.Builder
	if err := CSVBatch(&c, outcomes); err != nil {
		t.Fatalf("CSVBatch: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(c.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSVBatch has %d lines, want 3", len(lines))
	}
	if !strings.Contains(lines[2], "\"") {
		t.Errorf("error row lacks quoted error: %q", lines[2])
	}
}

// TestCSVHostileFields pins the encoding/csv bugfix: a job name (or an
// error string) containing commas, quotes and newlines must survive a
// CSV round trip as a single field instead of corrupting the table.
func TestCSVHostileFields(t *testing.T) {
	hostile := `evil,"job"` + "\nname"
	rows := []Row{
		{Job: hostile, FBBytes: 2048, BasicFeasible: true, RF: 2, DSImp: 12.5, CDSImp: 25.0, DTBytes: 64},
		{Job: "failed", FBBytes: 1024, Err: `bad "arch", really`},
	}
	var b strings.Builder
	if err := CSVRows(&b, rows); err != nil {
		t.Fatalf("CSVRows: %v", err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("output does not parse back as CSV: %v\n%s", err, b.String())
	}
	if len(recs) != 3 {
		t.Fatalf("parsed %d records, want 3 (header + 2 rows)", len(recs))
	}
	if got := recs[1][0]; got != hostile {
		t.Errorf("hostile job name corrupted: %q != %q", got, hostile)
	}
	if got := recs[1][4]; got != "12.50" {
		t.Errorf("ds_improvement = %q, want 12.50", got)
	}
	if got := recs[2][7]; got != `bad "arch", really` {
		t.Errorf("hostile error corrupted: %q", got)
	}
	for i, rec := range recs {
		if len(rec) != 8 {
			t.Errorf("record %d has %d fields, want 8", i, len(rec))
		}
	}
}
