package sweep

// Cancellation tests for the batch/grid runner and the FB sweep: a
// canceled run must come back promptly with errors matching
// scherr.ErrCanceled on the abandoned points, keep the points it already
// measured, and leak no goroutines.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"cds/internal/scherr"
	"cds/internal/workloads"
)

func TestBatchCancelMidGrid(t *testing.T) {
	base := runtime.NumGoroutine()
	archs, _ := PresetArchs("M1/4", "M1", "M2")
	jobs := Grid(archs, workloads.All())
	if len(jobs) < 10 {
		t.Fatalf("grid too small for a cancellation test: %d jobs", len(jobs))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel before the grid starts: no point may run
	start := time.Now()
	out := BatchCtx(ctx, jobs, 4)
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("canceled batch took %v, want a prompt return", d)
	}
	if len(out) != len(jobs) {
		t.Fatalf("canceled batch returned %d outcomes, want %d (one per job)", len(out), len(jobs))
	}
	for i, o := range out {
		if o.Cmp != nil {
			t.Fatalf("job %d (%s) ran under a dead context", i, o.Job.Name)
		}
		if !errors.Is(o.Err, scherr.ErrCanceled) {
			t.Fatalf("job %d (%s): err = %v, want scherr.ErrCanceled", i, o.Job.Name, o.Err)
		}
		if o.Job.Name != jobs[i].Name {
			t.Fatalf("outcome %d lost its job identity", i)
		}
	}
	// No worker goroutines may outlive the batch.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d running, started with %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBatchCancelKeepsMeasuredPoints(t *testing.T) {
	e := workloads.E1()
	jobs := make([]Job, 12)
	for i := range jobs {
		jobs[i] = Job{Name: "p", Arch: e.Arch, Part: e.Part}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Cancel once the first points have been measured; the serial worker
	// makes "measured so far" deterministic enough to assert the split.
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
		close(done)
	}()
	out := BatchCtx(ctx, jobs, 1)
	<-done
	measured, abandoned := 0, 0
	for _, o := range out {
		switch {
		case o.Err == nil && o.Cmp != nil:
			measured++
		case errors.Is(o.Err, scherr.ErrCanceled):
			abandoned++
		default:
			t.Fatalf("outcome neither measured nor canceled: cmp=%v err=%v", o.Cmp != nil, o.Err)
		}
	}
	if measured+abandoned != len(jobs) {
		t.Fatalf("measured %d + abandoned %d != %d jobs", measured, abandoned, len(jobs))
	}
	// Timing-dependent, but each E1 comparison takes ~ms: the 50ms delay
	// guarantees at least one measured point, and 12 points of real work
	// make it overwhelmingly likely the cancel lands before the end. Only
	// the invariant that BOTH kinds are reported correctly matters above;
	// log the split for the curious.
	t.Logf("measured %d points, abandoned %d", measured, abandoned)
}

func TestFBCtxCancel(t *testing.T) {
	e := workloads.MPEG()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := FBCtx(ctx, e.Arch, e.Part, 1024, 8*1024, 256)
	if !errors.Is(err, scherr.ErrCanceled) {
		t.Fatalf("FBCtx on dead context: %v, want scherr.ErrCanceled", err)
	}
}

func TestFBInvalidRangeTyped(t *testing.T) {
	e := workloads.E1()
	_, err := FB(e.Arch, e.Part, 2048, 1024, 256)
	if !errors.Is(err, scherr.ErrInvalidSpec) {
		t.Fatalf("bad FB range: err = %v, want scherr.ErrInvalidSpec", err)
	}
}

func TestSharingCtxCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SharingCtx(ctx, workloads.DefaultSynthetic(), 1, []float64{0, 0.5, 1})
	if !errors.Is(err, scherr.ErrCanceled) {
		t.Fatalf("SharingCtx on dead context: %v, want scherr.ErrCanceled", err)
	}
}
