package sweep

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// The CSV headers are a public contract: downstream parsers (and the
// README's schema docs) key on these exact column names and positions.
// Changing one must be a deliberate act that shows up in review as a
// golden-test edit, never a silent drive-by.
const (
	fbCSVHeader    = "fb_bytes,basic_feasible,rf,ds_improvement,cds_improvement,retained_bytes,dt_bytes"
	batchCSVHeader = "job,fb_bytes,basic_feasible,rf,ds_improvement,cds_improvement,dt_bytes,error"
)

func TestCSVHeaderStability(t *testing.T) {
	var fb bytes.Buffer
	CSV(&fb, nil)
	if got := strings.TrimRight(fb.String(), "\n"); got != fbCSVHeader {
		t.Errorf("FB sweep CSV header changed:\n got %q\nwant %q", got, fbCSVHeader)
	}

	var batch bytes.Buffer
	if err := CSVRows(&batch, nil); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimRight(batch.String(), "\n"); got != batchCSVHeader {
		t.Errorf("batch CSV header changed:\n got %q\nwant %q", got, batchCSVHeader)
	}
}

// TestCSVRowFieldCount pins that data rows stay aligned with the header
// in both the happy and the error shape — a row with a different column
// count corrupts every downstream table.
func TestCSVRowFieldCount(t *testing.T) {
	var buf bytes.Buffer
	rows := []Row{
		{Job: "M1/MPEG", FBBytes: 2048, BasicFeasible: true, RF: 2, DSImp: 32.88, CDSImp: 38.61, DTBytes: 832},
		{Job: "M1/16,weird", FBBytes: 512, Err: "schedule: infeasible"},
	}
	if err := CSVRows(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d CSV lines, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	wantCols := strings.Count(batchCSVHeader, ",") + 1
	for i, line := range lines {
		// The quoted comma in the hostile job name must not add a column.
		if got := strings.Count(strings.ReplaceAll(line, `"M1/16,weird"`, "x"), ",") + 1; got != wantCols {
			t.Errorf("line %d has %d columns, want %d: %q", i, got, wantCols, line)
		}
	}
	if !strings.Contains(lines[2], `"M1/16,weird",512,,,,,,schedule: infeasible`) {
		t.Errorf("error row shape changed: %q", lines[2])
	}
}

// TestCSVHeadersDocumented keeps the README's schema section honest:
// the exact header lines this package emits must appear verbatim there.
func TestCSVHeadersDocumented(t *testing.T) {
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Skipf("README not readable: %v", err)
	}
	for _, h := range []string{fbCSVHeader, batchCSVHeader} {
		if !bytes.Contains(readme, []byte(h)) {
			t.Errorf("README does not document the CSV header %q", h)
		}
	}
}
