package sweep

// Torn-write recovery tests: the journal's documented truncate-vs-fail
// rules driven by real injected filesystem faults (journal.FaultFS)
// during an actual journaled sweep, instead of hand-crafted files:
//
//   - a record whose write failed (clean ENOSPC or a torn short write,
//     rolled back in place) is simply absent: resume re-runs the point;
//   - a record whose fsync failed is reported as not durably journaled
//     but its complete line replays on reopen: resume skips the point;
//   - a torn tail left by a crash (no rollback ran) is truncated away
//     on open; a corrupt newline-terminated line fails the open.
//
// In every recovered case the resumed rows must be byte-identical to an
// uninterrupted run's.

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cds/internal/journal"
)

func TestJournaledSweepRecoversFromInjectedFaults(t *testing.T) {
	jobs := journalJobs(t)
	dir := t.TempDir()

	// Uninterrupted reference.
	jRef, _, err := OpenJournal(filepath.Join(dir, "ref.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	refRows, err := RunJournaled(context.Background(), jRef, nil, jobs, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	jRef.Close()
	want := csvOf(t, refRows)

	cases := []struct {
		name  string
		fault journal.Fault
		// journaledAfterRun is how many of the len(jobs) records must
		// survive in the journal after the faulted run (-1 = any).
		missing int // records lost to the fault
	}{
		// Write #2 is the second Append: faults land mid-run, not at the
		// first or last record, so resume exercises skip AND re-run.
		{"enospc-clean", journal.Fault{Op: journal.OpWrite, N: 2}, 1},
		{"short-write-torn", journal.Fault{Op: journal.OpWrite, N: 2, ShortBytes: 7}, 1},
		// Sync #2 is Append #2's fsync; the line itself is complete, so
		// nothing is actually lost on a live filesystem.
		{"fsync-error", journal.Fault{Op: journal.OpSync, N: 2}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".jsonl")
			ff := journal.NewFaultFS(nil, tc.fault)
			j, prior, err := OpenJournalFS(ff, path)
			if err != nil {
				t.Fatalf("open under fault fs: %v", err)
			}
			if len(prior) != 0 {
				t.Fatalf("fresh journal replayed %d records", len(prior))
			}
			rows, err := RunJournaled(context.Background(), j, prior, jobs, 1, nil)
			j.Close()
			if err == nil {
				t.Fatal("faulted run reported no journal write failure")
			}
			if got := csvOf(t, rows); string(got) != string(want) {
				t.Fatalf("faulted run rows diverged:\n got: %s\nwant: %s", got, want)
			}
			if len(ff.Fired) != 1 {
				t.Fatalf("fired faults = %v, want exactly the scheduled one", ff.Fired)
			}

			// Recovery: reopen on the real fs and resume. Only the points
			// the fault actually lost may re-run.
			j2, prior2, err := OpenJournal(path)
			if err != nil {
				t.Fatalf("reopen after fault: %v", err)
			}
			if got, wantN := len(Completed(prior2)), len(jobs)-tc.missing; got != wantN {
				t.Fatalf("journal kept %d completed points, want %d", got, wantN)
			}
			reruns := 0
			rows2, err := RunJournaled(context.Background(), j2, prior2, jobs, 1, func(Record) { reruns++ })
			j2.Close()
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if reruns != tc.missing {
				t.Fatalf("resume re-ran %d points, want %d", reruns, tc.missing)
			}
			if got := csvOf(t, rows2); string(got) != string(want) {
				t.Fatalf("resumed rows not byte-identical:\n got: %s\nwant: %s", got, want)
			}
		})
	}
}

func TestJournaledSweepTornTailTruncatedCorruptLineFails(t *testing.T) {
	jobs := journalJobs(t)
	dir := t.TempDir()

	path := filepath.Join(dir, "tail.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := RunJournaled(context.Background(), j, nil, jobs, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	want := csvOf(t, rows)

	// A crash mid-append leaves a torn tail (no terminating newline):
	// truncated away on open, the half-written point re-runs.
	if f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0); err != nil {
		t.Fatal(err)
	} else {
		if _, err := f.WriteString(`{"status":"done","row":{"job":"torn`); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	j2, prior, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open over torn tail: %v", err)
	}
	if got := len(Completed(prior)); got != len(jobs) {
		t.Fatalf("torn-tail open replayed %d completed points, want %d", got, len(jobs))
	}
	rows2, err := RunJournaled(context.Background(), j2, prior, jobs, 1, func(Record) {
		t.Error("fully-journaled resume ran a point")
	})
	j2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := csvOf(t, rows2); string(got) != string(want) {
		t.Fatalf("resume after torn-tail truncation diverged:\n got: %s\nwant: %s", got, want)
	}

	// A corrupt COMPLETE line is not a torn tail: open must fail rather
	// than silently drop an fsync'd record.
	if f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0); err != nil {
		t.Fatal(err)
	} else {
		if _, err := f.WriteString("not json\n"); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if _, _, err := OpenJournal(path); err == nil || !strings.Contains(err.Error(), "corrupt record") {
		t.Fatalf("open over corrupt complete line = %v, want corrupt-record failure", err)
	}
}
