package sweep

// Crash-safe sweep checkpointing: a batch run appends one JSONL record
// per grid point to an append-only journal the moment the point
// completes, fsyncing each record. A killed sweep therefore keeps every
// finished point on disk; re-running with the same journal skips them
// and produces output byte-identical to an uninterrupted run.
//
// Journal format — one JSON object per line:
//
//	{"status":"done","row":{"job":"M1/MPEG","fb_bytes":2048,...}}
//
// Status is "done" (the point ran, Err empty), "error" (the point ran
// and failed deterministically; its error text is the result) or
// "canceled" (the point was abandoned by cancellation or shutdown).
// Resume skips done and error records — both are the outcome of an
// actual run — and re-runs canceled ones.
//
// The durability rules (fsync per record, exclusive advisory lock,
// torn-tail truncation, corruption detection) live in internal/journal,
// which this file instantiates with the sweep's Record schema.

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"cds/internal/journal"
	"cds/internal/scherr"
)

// Journal statuses.
const (
	StatusDone     = "done"
	StatusError    = "error"
	StatusCanceled = "canceled"
)

// Record is one journal line: a report row plus how the point ended.
type Record struct {
	Status string `json:"status"`
	Row    Row    `json:"row"`
}

// recordOf classifies one outcome into its journal record.
func recordOf(o Outcome) Record {
	rec := Record{Status: StatusDone, Row: RowOf(o)}
	switch {
	case o.Err == nil:
	case errors.Is(o.Err, scherr.ErrCanceled):
		rec.Status = StatusCanceled
	default:
		rec.Status = StatusError
	}
	return rec
}

// Journal is an append-only, fsync-per-record JSONL checkpoint file of
// sweep records. Appends are serialized internally, so the batch pool's
// workers may share one Journal.
type Journal = journal.Journal[Record]

// OpenJournal opens (creating if missing) the journal at path and
// replays its records. The file is held under an exclusive advisory
// lock until Close, so a second process (or a second OpenJournal in the
// same process) journaling to the same path fails the open instead of
// interleaving records. A torn tail — a final line with no terminating
// newline, the signature of a crash mid-append — is truncated away so
// the next append starts a clean line; any newline-terminated line that
// does not parse is corruption and fails the open rather than silently
// dropping an fsync'd completed point.
func OpenJournal(path string) (*Journal, []Record, error) {
	return OpenJournalFS(journal.OS, path)
}

// OpenJournalFS is OpenJournal through an explicit filesystem seam: the
// chaos harness passes a journal.FaultFS so torn writes, ENOSPC and
// fsync failures exercise the recovery rules with real injected faults.
func OpenJournalFS(fsys journal.FS, path string) (*Journal, []Record, error) {
	j, recs, err := journal.OpenFS[Record](fsys, path)
	if err != nil {
		return nil, nil, fmt.Errorf("sweep: %w", err)
	}
	return j, recs, nil
}

// Completed indexes the replayed records that must not re-run: done and
// error outcomes, keyed by job name. Canceled records are deliberately
// absent — an abandoned point never produced a result, so resume runs
// it. A job journaled more than once keeps its latest completed record.
func Completed(recs []Record) map[string]Row {
	done := make(map[string]Row)
	for _, rec := range recs {
		if rec.Status == StatusDone || rec.Status == StatusError {
			done[rec.Row.Job] = rec.Row
		}
	}
	return done
}

// RunJournaled is the checkpointing batch runner: jobs whose outcome the
// journal already holds (per Completed over prior) are skipped; the rest
// run through the batch pool, each outcome journaled the moment it
// completes; points abandoned by cancellation are journaled as canceled
// so an operator can see what a shutdown left behind. onRecord, when
// non-nil, observes every appended record (it may be called from worker
// goroutines).
//
// The returned rows cover EVERY job in job order — journaled and fresh
// merged — so the report of a resumed sweep is byte-identical to an
// uninterrupted one. The error is nil on a full run, matches
// scherr.ErrCanceled when ctx ended first, and reports the first journal
// write failure (the run continues past it; completed points are still
// in the returned rows, just not durably recorded).
func RunJournaled(ctx context.Context, j *Journal, prior []Record, jobs []Job, workers int, onRecord func(Record)) ([]Row, error) {
	done := Completed(prior)
	todo := make([]Job, 0, len(jobs))
	for _, job := range jobs {
		if _, ok := done[job.Name]; !ok {
			todo = append(todo, job)
		}
	}

	var appendErr struct {
		mu  sync.Mutex
		err error
	}
	record := func(rec Record) {
		if err := j.Append(rec); err != nil {
			appendErr.mu.Lock()
			if appendErr.err == nil {
				appendErr.err = err
			}
			appendErr.mu.Unlock()
		}
		if onRecord != nil {
			onRecord(rec)
		}
	}

	outcomes := batchCtx(ctx, todo, workers, func(o Outcome) {
		record(recordOf(o))
	})
	fresh := make(map[string]Row, len(outcomes))
	for _, o := range outcomes {
		if !o.done {
			// Abandoned by cancellation: journal the abandonment (the
			// observer never saw the point because it never ran).
			record(recordOf(o))
		}
		fresh[o.Job.Name] = RowOf(o)
	}

	rows := make([]Row, 0, len(jobs))
	for _, job := range jobs {
		if row, ok := done[job.Name]; ok {
			rows = append(rows, row)
		} else {
			rows = append(rows, fresh[job.Name])
		}
	}
	if err := scherr.FromContext(ctx); err != nil {
		return rows, err
	}
	appendErr.mu.Lock()
	defer appendErr.mu.Unlock()
	return rows, appendErr.err
}
