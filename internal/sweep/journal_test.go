package sweep

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"cds/internal/scherr"
	"cds/internal/workloads"
)

func journalJobs(t *testing.T) []Job {
	t.Helper()
	archs, skipped := PresetArchs("M1/4", "M1")
	if len(skipped) > 0 {
		t.Fatalf("unexpected skipped presets: %v", skipped)
	}
	return Grid(archs, workloads.All()[:4])
}

func csvOf(t *testing.T, rows []Row) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := CSVRows(&b, rows); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestJournalResumeByteIdentical is the crash-safety pin: a batch
// canceled at a seeded mid-run point, then resumed from its journal,
// produces CSV output byte-identical to an uninterrupted run — and no
// grid point executes twice.
func TestJournalResumeByteIdentical(t *testing.T) {
	jobs := journalJobs(t)
	dir := t.TempDir()

	// Uninterrupted reference run (journaled too, to keep paths equal).
	jRef, prior, err := OpenJournal(filepath.Join(dir, "ref.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(prior))
	}
	refRows, err := RunJournaled(context.Background(), jRef, nil, jobs, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	jRef.Close()
	want := csvOf(t, refRows)

	// Interrupted run: cancel after the k-th journaled point (k picked
	// by a seeded roll so the cut moves between test evolutions without
	// becoming nondeterministic within one).
	seed := uint64(0x9e3779b97f4a7c15)
	k := int(seed%uint64(len(jobs)-2)) + 1
	path := filepath.Join(dir, "run.jsonl")
	j1, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	_, err = RunJournaled(ctx, j1, nil, jobs, 1, func(Record) {
		if seen.Add(1) == int64(k) {
			cancel()
		}
	})
	cancel()
	if !errors.Is(err, scherr.ErrCanceled) {
		t.Fatalf("interrupted run returned %v, want ErrCanceled", err)
	}
	j1.Close() // the "crash"

	// Resume: completed points come from the journal, the rest run.
	j2, prior, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	done := Completed(prior)
	if len(done) < k {
		t.Fatalf("journal kept %d completed points, want >= %d", len(done), k)
	}
	if len(done) >= len(jobs) {
		t.Fatalf("every point completed before the cancel (k=%d); the resume path is untested", k)
	}
	resumedRows, err := RunJournaled(context.Background(), j2, prior, jobs, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := csvOf(t, resumedRows)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed CSV differs from uninterrupted run:\n--- want\n%s\n--- got\n%s", want, got)
	}
	j2.Close() // release the journal lock before the verification replay

	// No point ran twice: across both passes the journal holds exactly
	// one done record per job (canceled markers are re-run, not re-done).
	j3, final, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	doneCount := map[string]int{}
	for _, rec := range final {
		if rec.Status == StatusDone || rec.Status == StatusError {
			doneCount[rec.Row.Job]++
		}
	}
	for _, job := range jobs {
		if doneCount[job.Name] != 1 {
			t.Errorf("point %q has %d completed journal records, want exactly 1", job.Name, doneCount[job.Name])
		}
	}
}

// TestJournalTornTail pins crash-mid-append recovery: a partial final
// line is truncated away on open, the full records before it survive,
// and the journal keeps appending cleanly afterwards.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		{Status: StatusDone, Row: Row{Job: "a", FBBytes: 1024, RF: 2}},
		{Status: StatusError, Row: Row{Job: "b", FBBytes: 2048, Err: "infeasible"}},
	}
	for _, rec := range recs {
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// The crash: half a record, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"status":"done","row":{"job":"c","fb`)
	f.Close()

	j2, replayed, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("open over torn tail: %v", err)
	}
	if len(replayed) != 2 {
		t.Fatalf("replayed %d records, want 2 (torn tail dropped)", len(replayed))
	}
	if replayed[0].Row.Job != "a" || replayed[1].Row.Job != "b" {
		t.Fatalf("replay corrupted: %+v", replayed)
	}
	if err := j2.Append(Record{Status: StatusDone, Row: Row{Job: "c", FBBytes: 4096}}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	_, again, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 3 || again[2].Row.Job != "c" {
		t.Fatalf("append after torn-tail recovery lost records: %+v", again)
	}
}

// TestJournalCorruptMiddleFails pins the difference between a torn tail
// (recoverable) and corruption in the middle of the file (must fail the
// open rather than silently dropping completed work).
func TestJournalCorruptMiddleFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.jsonl")
	content := `{"status":"done","row":{"job":"a"}}` + "\n" +
		"NOT JSON\n" +
		`{"status":"done","row":{"job":"b"}}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("corrupt middle record did not fail the open")
	}
}

// TestJournalCorruptTailFails pins the tail contract's other half: a
// complete, newline-terminated final line that does not parse is
// corruption (an fsync'd record damaged in place), NOT a torn tail — it
// must fail the open loudly instead of silently re-running the point. A
// genuine crash mid-append almost always loses the newline, which is
// the only case truncated away.
func TestJournalCorruptTailFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tail.jsonl")
	content := `{"status":"done","row":{"job":"a"}}` + "\n" +
		"NOT JSON BUT TERMINATED\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("newline-terminated corrupt final record did not fail the open")
	}
}

// TestJournalCanceledPointsRerun pins the abandonment contract: points
// journaled as canceled (a drain's leftovers) are re-run on resume.
func TestJournalCanceledPointsRerun(t *testing.T) {
	jobs := journalJobs(t)
	path := filepath.Join(t.TempDir(), "cancel.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // nothing may run: every point is journaled as canceled
	rows, err := RunJournaled(ctx, j, nil, jobs, 2, nil)
	if !errors.Is(err, scherr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if len(rows) != len(jobs) {
		t.Fatalf("rows = %d, want %d (abandoned points still report)", len(rows), len(jobs))
	}
	j.Close()

	j2, prior, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	canceled := 0
	for _, rec := range prior {
		if rec.Status == StatusCanceled {
			canceled++
		}
	}
	if canceled != len(jobs) {
		t.Fatalf("journal holds %d canceled records, want %d", canceled, len(jobs))
	}
	if n := len(Completed(prior)); n != 0 {
		t.Fatalf("Completed counts %d canceled points as done", n)
	}
	rows, err = RunJournaled(context.Background(), j2, prior, jobs, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("point %q still failed after resume: %s", r.Job, r.Err)
		}
	}
}

// TestJournalConcurrentAppend pins that the batch pool's workers can
// share one journal: concurrent appends never interleave bytes.
func TestJournalConcurrentAppend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "conc.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 20; n++ {
				j.Append(Record{Status: StatusDone, Row: Row{Job: strings.Repeat("x", i+1), FBBytes: n}})
			}
		}(i)
	}
	wg.Wait()
	j.Close()
	_, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("concurrent appends corrupted the journal: %v", err)
	}
	if len(recs) != 160 {
		t.Fatalf("replayed %d records, want 160", len(recs))
	}
}
