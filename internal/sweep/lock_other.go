//go:build !unix

package sweep

import "os"

// lockFile is a no-op where advisory file locks are unavailable; the
// server-side per-name serialization in internal/serve still protects
// journals from concurrent sweeps within one daemon.
func lockFile(*os.File) error { return nil }
