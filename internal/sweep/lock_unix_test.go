//go:build unix

package sweep

import (
	"path/filepath"
	"testing"
)

// TestJournalExclusiveLock pins the single-writer contract: while a
// journal is open, a second OpenJournal on the same path — the shape of
// a concurrent cmd/sweep -journal on a shared file — fails instead of
// interleaving appends; closing the first releases the lock.
func TestJournalExclusiveLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "locked.jsonl")
	j, _, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenJournal(path); err == nil {
		t.Fatal("second OpenJournal on a held journal succeeded")
	}
	if err := j.Append(Record{Status: StatusDone, Row: Row{Job: "a"}}); err != nil {
		t.Fatalf("append under lock: %v", err)
	}
	j.Close()

	j2, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	defer j2.Close()
	if len(recs) != 1 || recs[0].Row.Job != "a" {
		t.Fatalf("replay after relock = %+v, want the one appended record", recs)
	}
}
