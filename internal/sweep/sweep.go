// Package sweep runs memory-size parameter sweeps: the paper samples each
// workload at one or two frame-buffer sizes (E1 vs E1*, MPEG vs MPEG*);
// the sweep generalizes that into full improvement-versus-memory curves,
// exposing the staircase structure of the reuse factor and the points
// where retention unlocks.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"

	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/conc"
	"cds/internal/core"
	"cds/internal/rescache"
	"cds/internal/scherr"
	"cds/internal/sim"
	"cds/internal/workloads"
)

// Point is one sweep sample.
type Point struct {
	// FBBytes is the frame-buffer set size of the sample.
	FBBytes int
	// BasicFeasible marks sizes the Basic Scheduler can run at.
	BasicFeasible bool
	// RF is the reuse factor CDS settled on.
	RF int
	// DSImp and CDSImp are the relative improvements over Basic in
	// percent (0 when basic is infeasible — see BasicFeasible).
	DSImp, CDSImp float64
	// RetainedBytes is the total size of CDS-retained objects.
	RetainedBytes int
	// DTBytes is the per-iteration traffic avoided by retention.
	DTBytes int
}

// FB sweeps the frame-buffer set size from lo to hi (inclusive) in the
// given step, scheduling the partition with all three policies at every
// sample. It is FBCtx with a background context.
func FB(pa arch.Params, part *app.Partition, lo, hi, step int) ([]Point, error) {
	return FBCtx(context.Background(), pa, part, lo, hi, step)
}

// FBCtx is the cancellable FB sweep. The samples are independent and run
// across a worker pool; the returned slice is ordered by FB size exactly
// as the serial sweep produced it, and the first genuine error (lowest
// FB size) propagates. Once ctx is done no new sample starts and the
// sweep returns an error matching scherr.ErrCanceled; a panicking sample
// surfaces as a *conc.PanicError without killing sibling workers.
func FBCtx(ctx context.Context, pa arch.Params, part *app.Partition, lo, hi, step int) ([]Point, error) {
	if lo <= 0 || hi < lo || step <= 0 {
		return nil, fmt.Errorf("sweep: bad range [%d, %d] step %d: %w", lo, hi, step, scherr.ErrInvalidSpec)
	}
	n := (hi-lo)/step + 1
	samples := make([]*Point, n)
	err := conc.ForEach(ctx, conc.DefaultLimit(), n, func(i int) error {
		pt, ok, err := fbPoint(ctx, pa, part, lo+i*step)
		if err != nil {
			return err
		}
		if ok {
			samples[i] = &pt
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var points []Point
	for _, pt := range samples {
		if pt != nil {
			points = append(points, *pt)
		}
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("sweep: no feasible sample in [%d, %d]", lo, hi)
	}
	return points, nil
}

// pointCache memoizes fbPoint samples under the content fingerprint of
// (arch-with-FB-size, partition). Overlapping sweep ranges, repeated
// sweeps of one workload, and batch grids that revisit a configuration
// all hit instead of rescheduling three policies per sample.
var pointCache = rescache.New("sweep.fb_point", 4096)

// pointTag versions the cached computation.
const pointTag = "fb-point/v1"

// pointOutcome is the memoized fbPoint result. Only clean outcomes
// (err == nil) are kept; infeasible floors (ok=false) are legitimate
// results and cache like any other.
type pointOutcome struct {
	pt Point
	ok bool
}

// fbPoint samples one FB size; ok is false below the data schedulers'
// feasibility floor (the sample is skipped, not an error — recognized by
// TYPE via scherr.ErrInfeasible, not by matching behavior). Samples are
// memoized content-addressed in pointCache: the FB size folds into the
// arch params, so every grid point has its own key.
func fbPoint(ctx context.Context, pa arch.Params, part *app.Partition, fb int) (Point, bool, error) {
	cfg := pa
	cfg.FBSetBytes = fb
	if !rescache.Enabled() {
		return fbPointUncached(ctx, cfg, part, fb)
	}
	if err := scherr.FromContext(ctx); err != nil {
		return Point{}, false, err
	}
	type outcome struct {
		pointOutcome
		err error
	}
	v := pointCache.Do(rescache.KeyOf(cfg, part, pointTag), func() (any, bool) {
		pt, ok, err := fbPointUncached(ctx, cfg, part, fb)
		return outcome{pointOutcome{pt, ok}, err}, err == nil
	})
	o := v.(outcome)
	if o.err != nil && errors.Is(o.err, scherr.ErrCanceled) && scherr.FromContext(ctx) == nil {
		// The in-flight leader was canceled but this caller's context is
		// alive: don't let a stranger's cancellation poison this sweep.
		return fbPointUncached(ctx, cfg, part, fb)
	}
	return o.pt, o.ok, o.err
}

// fbPointUncached is the raw sample: cfg already carries the FB size.
func fbPointUncached(ctx context.Context, cfg arch.Params, part *app.Partition, fb int) (Point, bool, error) {
	pt := Point{FBBytes: fb}

	dsS, err := (core.DataScheduler{}).ScheduleCtx(ctx, cfg, part)
	if err != nil {
		if errors.Is(err, scherr.ErrInfeasible) {
			return Point{}, false, nil // below even the data schedulers' floor
		}
		return Point{}, false, err
	}
	cdsS, err := (core.CompleteDataScheduler{}).ScheduleCtx(ctx, cfg, part)
	if err != nil {
		return Point{}, false, err
	}
	pt.RF = cdsS.RF
	pt.DTBytes = cdsS.AvoidedBytesPerIter()
	for _, r := range cdsS.Retained {
		pt.RetainedBytes += r.Size
	}

	basicS, err := (core.Basic{}).ScheduleCtx(ctx, cfg, part)
	if err != nil {
		if !errors.Is(err, scherr.ErrInfeasible) {
			return Point{}, false, err
		}
		return pt, true, nil // basic infeasible: still a sample
	}
	pt.BasicFeasible = true
	rBasic, err := sim.Run(basicS)
	if err != nil {
		return Point{}, false, err
	}
	rDS, err := sim.Run(dsS)
	if err != nil {
		return Point{}, false, err
	}
	rCDS, err := sim.Run(cdsS)
	if err != nil {
		return Point{}, false, err
	}
	pt.DSImp = sim.Improvement(rBasic, rDS)
	pt.CDSImp = sim.Improvement(rBasic, rCDS)
	return pt, true, nil
}

// Write renders the sweep as a table plus an ASCII curve of the CDS
// improvement.
func Write(w io.Writer, points []Point) {
	fmt.Fprintf(w, "%8s %4s %10s %10s %10s %8s\n", "FB", "RF", "DS impr", "CDS impr", "retained", "DT/iter")
	for _, p := range points {
		if !p.BasicFeasible {
			fmt.Fprintf(w, "%8s %4d %10s %10s %9dB %7dB   (basic infeasible)\n",
				arch.FormatSize(p.FBBytes), p.RF, "-", "-", p.RetainedBytes, p.DTBytes)
			continue
		}
		fmt.Fprintf(w, "%8s %4d %9.1f%% %9.1f%% %9dB %7dB\n",
			arch.FormatSize(p.FBBytes), p.RF, p.DSImp, p.CDSImp, p.RetainedBytes, p.DTBytes)
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, "CDS improvement vs frame-buffer size:")
	for _, p := range points {
		if !p.BasicFeasible {
			fmt.Fprintf(w, "%8s | basic infeasible\n", arch.FormatSize(p.FBBytes))
			continue
		}
		n := int(p.CDSImp / 2)
		if n < 0 {
			n = 0
		}
		if n > 50 {
			n = 50
		}
		fmt.Fprintf(w, "%8s |%s %.0f%% (RF=%d)\n", arch.FormatSize(p.FBBytes), strings.Repeat("#", n), p.CDSImp, p.RF)
	}
}

// CSV writes the sweep as comma-separated values.
func CSV(w io.Writer, points []Point) {
	fmt.Fprintln(w, "fb_bytes,basic_feasible,rf,ds_improvement,cds_improvement,retained_bytes,dt_bytes")
	for _, p := range points {
		fmt.Fprintf(w, "%d,%v,%d,%.2f,%.2f,%d,%d\n",
			p.FBBytes, p.BasicFeasible, p.RF, p.DSImp, p.CDSImp, p.RetainedBytes, p.DTBytes)
	}
}

// SharingPoint is one sample of the sharing-degree sweep.
type SharingPoint struct {
	// Frac is the probability that a cluster pair shares a table and
	// feeds a result forward (the synthetic generator's knobs).
	Frac float64
	// CandidateBytes is the total size of retention candidates found.
	CandidateBytes int
	// DSImp and CDSImp are improvements over Basic (%).
	DSImp, CDSImp float64
}

// Sharing sweeps the synthetic generator's sharing fractions and measures
// how the Complete Data Scheduler's advantage over the Data Scheduler
// grows with the amount of inter-cluster reuse available — the axis the
// paper's experiments vary implicitly (E2 shares little, ATR-SLD* shares
// everything). It is SharingCtx with a background context.
func Sharing(cfg SyntheticCfg, seed int64, fracs []float64) ([]SharingPoint, error) {
	return SharingCtx(context.Background(), cfg, seed, fracs)
}

// SharingCtx is the cancellable sharing-degree sweep: between fractions
// it checks ctx and stops with an error matching scherr.ErrCanceled.
func SharingCtx(ctx context.Context, cfg SyntheticCfg, seed int64, fracs []float64) ([]SharingPoint, error) {
	var points []SharingPoint
	for _, f := range fracs {
		if err := scherr.FromContext(ctx); err != nil {
			return nil, fmt.Errorf("sweep: sharing: %w", err)
		}
		c := cfg
		c.SharedDataFrac = f
		c.SharedResultFrac = f
		part, err := workloads.Synthetic(c, seed)
		if err != nil {
			return nil, err
		}
		pa := workloads.SyntheticArch(c)
		basicS, err := (core.Basic{}).Schedule(pa, part)
		if err != nil {
			return nil, fmt.Errorf("sweep: sharing %.2f: %w", f, err)
		}
		dsS, err := (core.DataScheduler{}).Schedule(pa, part)
		if err != nil {
			return nil, err
		}
		cdsS, err := (core.CompleteDataScheduler{}).Schedule(pa, part)
		if err != nil {
			return nil, err
		}
		rB, err := sim.Run(basicS)
		if err != nil {
			return nil, err
		}
		rD, err := sim.Run(dsS)
		if err != nil {
			return nil, err
		}
		rC, err := sim.Run(cdsS)
		if err != nil {
			return nil, err
		}
		pt := SharingPoint{
			Frac:   f,
			DSImp:  sim.Improvement(rB, rD),
			CDSImp: sim.Improvement(rB, rC),
		}
		for _, sd := range cdsS.Info.SharedData {
			pt.CandidateBytes += sd.Size
		}
		for _, sr := range cdsS.Info.SharedResults {
			pt.CandidateBytes += sr.Size
		}
		points = append(points, pt)
	}
	return points, nil
}

// SyntheticCfg re-exports the generator config so callers of this package
// need not import workloads directly.
type SyntheticCfg = workloads.SyntheticConfig

// WriteSharing renders a sharing sweep.
func WriteSharing(w io.Writer, points []SharingPoint) {
	fmt.Fprintf(w, "%8s %12s %10s %10s %10s\n", "sharing", "candidates", "DS impr", "CDS impr", "CDS-DS")
	for _, p := range points {
		fmt.Fprintf(w, "%7.0f%% %11dB %9.1f%% %9.1f%% %9.1f%%\n",
			100*p.Frac, p.CandidateBytes, p.DSImp, p.CDSImp, p.CDSImp-p.DSImp)
	}
}
