package sweep

import (
	"strings"
	"testing"

	"cds/internal/rescache"
	"cds/internal/workloads"
)

func TestFBSweepMPEG(t *testing.T) {
	e := workloads.MPEG()
	points, err := FB(e.Arch, e.Part, 768, 4096, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 8 {
		t.Fatalf("only %d samples", len(points))
	}
	// The memory floor shows up: the smallest feasible sizes run DS/CDS
	// but not Basic.
	if points[0].BasicFeasible {
		t.Errorf("FB=%d should be below the basic scheduler's floor", points[0].FBBytes)
	}
	sawFeasible := false
	prevRF := 0
	for _, p := range points {
		if p.BasicFeasible {
			sawFeasible = true
			if p.CDSImp < p.DSImp {
				t.Errorf("FB=%d: CDS %.1f below DS %.1f", p.FBBytes, p.CDSImp, p.DSImp)
			}
		}
		// RF is monotone non-decreasing in memory.
		if p.RF < prevRF {
			t.Errorf("RF decreased from %d to %d at FB=%d", prevRF, p.RF, p.FBBytes)
		}
		prevRF = p.RF
	}
	if !sawFeasible {
		t.Fatal("no basic-feasible samples")
	}
	// The top of the sweep must reach a higher RF than the bottom: the
	// staircase exists.
	if points[len(points)-1].RF <= points[0].RF {
		t.Errorf("RF staircase absent: %d -> %d", points[0].RF, points[len(points)-1].RF)
	}
}

func TestFBSweepBadRange(t *testing.T) {
	e := workloads.E1()
	if _, err := FB(e.Arch, e.Part, 0, 100, 10); err == nil {
		t.Error("lo=0 accepted")
	}
	if _, err := FB(e.Arch, e.Part, 100, 50, 10); err == nil {
		t.Error("hi<lo accepted")
	}
	if _, err := FB(e.Arch, e.Part, 100, 200, 0); err == nil {
		t.Error("step=0 accepted")
	}
	// A range below any feasible size errors cleanly.
	if _, err := FB(e.Arch, e.Part, 8, 16, 8); err == nil {
		t.Error("infeasible-only range accepted")
	}
}

func TestWriteAndCSV(t *testing.T) {
	// MPEG's range includes basic-infeasible sizes, exercising both
	// rendering branches.
	e := workloads.MPEG()
	points, err := FB(e.Arch, e.Part, 768, 2048, 256)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	Write(&b, points)
	out := b.String()
	for _, want := range []string{"FB", "RF", "CDS improvement", "#", "basic infeasible"} {
		if !strings.Contains(out, want) {
			t.Errorf("Write output missing %q:\n%s", want, out)
		}
	}
	var c strings.Builder
	CSV(&c, points)
	lines := strings.Split(strings.TrimSpace(c.String()), "\n")
	if len(lines) != len(points)+1 {
		t.Errorf("CSV has %d lines, want %d", len(lines), len(points)+1)
	}
}

func TestSharingSweep(t *testing.T) {
	cfg := workloads.DefaultSynthetic()
	fracs := []float64{0, 0.5, 1}
	points, err := Sharing(cfg, 3, fracs)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// With zero sharing CDS cannot beat DS; with full sharing it must.
	zero := points[0]
	full := points[len(points)-1]
	if zero.CandidateBytes != 0 {
		t.Errorf("zero-sharing workload has %d candidate bytes", zero.CandidateBytes)
	}
	if gap := zero.CDSImp - zero.DSImp; gap > 0.5 {
		t.Errorf("zero sharing: CDS-DS gap %.2f, want ~0", gap)
	}
	if full.CandidateBytes == 0 {
		t.Error("full sharing produced no candidates")
	}
	if full.CDSImp <= full.DSImp {
		t.Errorf("full sharing: CDS %.1f should beat DS %.1f", full.CDSImp, full.DSImp)
	}
	var b strings.Builder
	WriteSharing(&b, points)
	if !strings.Contains(b.String(), "CDS-DS") {
		t.Error("WriteSharing output malformed")
	}
}

// TestFBSweepCachedMatchesUncached: the memoized sweep must render the
// exact same CSV as the raw pipeline — cache fill and cache hit alike.
func TestFBSweepCachedMatchesUncached(t *testing.T) {
	e := workloads.MPEG()
	render := func(points []Point) string {
		var sb strings.Builder
		CSV(&sb, points)
		return sb.String()
	}

	prev := rescache.SetEnabled(false)
	uncached, err := FB(e.Arch, e.Part, 768, 4096, 256)
	rescache.SetEnabled(prev)
	if err != nil {
		t.Fatal(err)
	}

	fill, err := FB(e.Arch, e.Part, 768, 4096, 256)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := FB(e.Arch, e.Part, 768, 4096, 256)
	if err != nil {
		t.Fatal(err)
	}
	want := render(uncached)
	if got := render(fill); got != want {
		t.Errorf("cache-fill sweep differs from uncached sweep:\n--- want\n%s--- got\n%s", want, got)
	}
	if got := render(hit); got != want {
		t.Errorf("cache-hit sweep differs from uncached sweep:\n--- want\n%s--- got\n%s", want, got)
	}
}
