package tenant

// SVG renderers for multi-tenant plans, in the style of internal/trace's
// Gantt exporter (self-contained, no scripts):
//
//   - WriteGanttSVG — one RC-array lane per tenant on a shared time
//     axis: compute spans colored by tenant, arrival cycle as a dashed
//     marker, the lane's end annotated against its solo lower bound. It
//     answers the fairness question at a glance: who held the array
//     when, and how interleaved the tenants really are.
//   - WriteCurvesSVG — each tenant's cumulative service share over
//     executed cycles (one polyline per tenant) against its ideal
//     weighted share (dashed reference): convergence is fairness,
//     departure is the bounded lag the verifier checks.

import (
	"fmt"
	"io"
	"strings"
)

const (
	ganttWidth     = 960
	ganttMarginL   = 130
	ganttMarginR   = 16
	ganttLaneH     = 26
	ganttLaneGap   = 10
	ganttHeaderH   = 40
	ganttAxisH     = 28
	ganttPlotW     = ganttWidth - ganttMarginL - ganttMarginR
	ganttMinSpanPx = 0.5
	ganttTicks     = 8
	ganttTitleSize = 13
	ganttLabelSize = 11
)

// tenantFill cycles a categorical palette by lane index.
func tenantFill(lane int) string {
	palette := []string{
		"#4878a8", "#a85a5a", "#5b9a68", "#c2803d",
		"#7a5fa8", "#3d8d8d", "#a8578d", "#8a8a3d",
	}
	return palette[lane%len(palette)]
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// WriteGanttSVG renders the executed plan as per-tenant lanes.
func WriteGanttSVG(w io.Writer, p *Plan) error {
	if p == nil || p.Exec == nil {
		return fmt.Errorf("tenant: no executed plan to render")
	}
	makespan := p.Exec.TotalCycles
	if makespan < 1 {
		makespan = 1
	}
	x := func(cycle int) float64 {
		return ganttMarginL + float64(cycle)/float64(makespan)*ganttPlotW
	}
	height := ganttHeaderH + len(p.Lanes)*(ganttLaneH+ganttLaneGap) + ganttAxisH

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="ui-monospace, SFMono-Regular, Menlo, monospace">`+"\n",
		ganttWidth, height, ganttWidth, height)
	b.WriteString(`<rect width="100%" height="100%" fill="#fcfcf9"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="%d" fill="#111" font-weight="bold">%s: %d tenants, %d cycles</text>`+"\n",
		ganttMarginL, ganttTitleSize, svgEscape(p.Base.Name), len(p.Lanes), p.Exec.TotalCycles)
	fmt.Fprintf(&b, `<text x="%d" y="32" font-size="%d" fill="#555">RC-array occupancy per tenant; dashed line = arrival</text>`+"\n",
		ganttMarginL, ganttLabelSize)

	for li, l := range p.Lanes {
		y := ganttHeaderH + li*(ganttLaneH+ganttLaneGap)
		label := fmt.Sprintf("%s w=%d", l.Tenant.ID, l.Tenant.Weight)
		if l.Tenant.Priority > 0 {
			label += fmt.Sprintf(" p=%d", l.Tenant.Priority)
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="%d" fill="#333" text-anchor="end">%s</text>`+"\n",
			ganttMarginL-8, y+ganttLaneH/2+4, ganttLabelSize, svgEscape(label))
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#eeeee8"/>`+"\n",
			ganttMarginL, y, ganttPlotW, ganttLaneH)
		visits := l.Result.Schedule.Visits
		for vi := range visits {
			x0 := x(p.Exec.LaneVisitStart[li][vi])
			x1 := x(p.Exec.LaneVisitEnd[li][vi])
			wpx := x1 - x0
			if wpx < ganttMinSpanPx {
				wpx = ganttMinSpanPx
			}
			fmt.Fprintf(&b, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s" stroke="#ffffff" stroke-width="0.3"><title>%s C%d block %d [%d,%d)</title></rect>`+"\n",
				x0, y+2, wpx, ganttLaneH-4, tenantFill(li),
				svgEscape(l.Tenant.ID), visits[vi].Cluster, visits[vi].Block,
				p.Exec.LaneVisitStart[li][vi], p.Exec.LaneVisitEnd[li][vi])
		}
		if at := l.Tenant.Arrive; at > 0 {
			fmt.Fprintf(&b, `<line x1="%.2f" y1="%d" x2="%.2f" y2="%d" stroke="#555" stroke-width="1" stroke-dasharray="3,3"/>`+"\n",
				x(at), y, x(at), y+ganttLaneH)
		}
		fmt.Fprintf(&b, `<text x="%.2f" y="%d" font-size="%d" fill="#555">end %d (solo %d)</text>`+"\n",
			x(p.Exec.LaneEnd[li])+4, y+ganttLaneH/2+4, ganttLabelSize-1,
			p.Exec.LaneEnd[li], l.Tenant.Arrive+l.SoloLastCompute())
	}

	axisY := ganttHeaderH + len(p.Lanes)*(ganttLaneH+ganttLaneGap) + 4
	writeAxis(&b, axisY, makespan, x)
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCurvesSVG renders the fairness curves of the executed plan.
func WriteCurvesSVG(w io.Writer, p *Plan) error {
	if p == nil || p.Exec == nil {
		return fmt.Errorf("tenant: no executed plan to render")
	}
	curves := p.Curves()
	ideal := p.IdealShares()
	makespan := p.Exec.TotalCycles
	if makespan < 1 {
		makespan = 1
	}
	const plotH = 220
	height := ganttHeaderH + plotH + ganttAxisH
	x := func(cycle int) float64 {
		return ganttMarginL + float64(cycle)/float64(makespan)*ganttPlotW
	}
	y := func(share float64) float64 {
		return float64(ganttHeaderH+plotH) - share*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="ui-monospace, SFMono-Regular, Menlo, monospace">`+"\n",
		ganttWidth, height, ganttWidth, height)
	b.WriteString(`<rect width="100%" height="100%" fill="#fcfcf9"/>` + "\n")
	fmt.Fprintf(&b, `<text x="%d" y="16" font-size="%d" fill="#111" font-weight="bold">Cumulative service share (solid) vs ideal weighted share (dashed)</text>`+"\n",
		ganttMarginL, ganttTitleSize)
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#eeeee8"/>`+"\n",
		ganttMarginL, ganttHeaderH, ganttPlotW, plotH)

	lx := ganttMarginL
	for li, l := range p.Lanes {
		fmt.Fprintf(&b, `<rect x="%d" y="22" width="12" height="12" fill="%s"/>`+"\n", lx, tenantFill(li))
		fmt.Fprintf(&b, `<text x="%d" y="32" font-size="%d" fill="#333">%s w=%d</text>`+"\n",
			lx+16, ganttLabelSize, svgEscape(l.Tenant.ID), l.Tenant.Weight)
		lx += 22 + 9*(len(l.Tenant.ID)+4)
	}

	for li := range p.Lanes {
		fmt.Fprintf(&b, `<line x1="%d" y1="%.2f" x2="%d" y2="%.2f" stroke="%s" stroke-width="1" stroke-dasharray="5,4" opacity="0.6"/>`+"\n",
			ganttMarginL, y(ideal[li]), ganttMarginL+ganttPlotW, y(ideal[li]), tenantFill(li))
		pts := curves[li]
		if len(pts) == 0 {
			continue
		}
		var poly strings.Builder
		for pi, pt := range pts {
			if pi > 0 {
				poly.WriteByte(' ')
			}
			fmt.Fprintf(&poly, "%.2f,%.2f", x(pt.Cycle), y(pt.Share))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.6"/>`+"\n",
			poly.String(), tenantFill(li))
	}

	writeAxis(&b, ganttHeaderH+plotH+4, makespan, x)
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeAxis draws the shared cycle axis with round tick labels.
func writeAxis(b *strings.Builder, yTop, makespan int, x func(int) float64) {
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999" stroke-width="1"/>`+"\n",
		ganttMarginL, yTop, ganttMarginL+ganttPlotW, yTop)
	for t := 0; t <= ganttTicks; t++ {
		cycle := makespan * t / ganttTicks
		fmt.Fprintf(b, `<line x1="%.2f" y1="%d" x2="%.2f" y2="%d" stroke="#999" stroke-width="1"/>`+"\n",
			x(cycle), yTop, x(cycle), yTop+4)
		fmt.Fprintf(b, `<text x="%.2f" y="%d" font-size="%d" fill="#555" text-anchor="middle">%d</text>`+"\n",
			x(cycle), yTop+16, ganttLabelSize-1, cycle)
	}
}
