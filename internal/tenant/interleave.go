package tenant

// The weighted-fair interleaver. Classic virtual-time fair queueing
// (WFQ) adapted to cluster granularity:
//
//   - the schedulable unit is a whole cluster run (Slice) — preemption
//     only at cluster boundaries keeps every lane's sub-schedule a valid
//     CDS schedule under its quota;
//   - each lane carries a virtual time; serving a slice charges
//     cost/weight, so heavier lanes drain virtual time slower and are
//     picked more often;
//   - strict priority bands sit above WFQ: while any higher-band lane is
//     eligible, lower bands wait — "preemption" lands at the next
//     boundary because the in-flight slice always finishes;
//   - a lane arriving late (Arrive > 0) has its virtual time advanced to
//     the current minimum among eligible lanes, so idle time never
//     accumulates into a burst credit that would starve the others.
//
// The accounting clock is PLAN TIME: the running sum of emitted slice
// costs (busy-cycle estimates), plus idle jumps while every pending lane
// is yet to arrive. Plan time deliberately ignores the DMA/compute
// overlap the simulator finds — credit accounting needs a deterministic,
// schedule-independent currency, and busy cycles are exactly what a
// slice takes from the shared machine.

import "cds/internal/sim"

// interleave stitches the lanes' slices into one global emission order.
// It returns the order, the per-step credit bookkeeping, and the largest
// lag any backlogged lane accumulated against its ideal weighted share.
// The output is deterministic: ties in virtual time break by lane index.
func interleave(lanes []*Lane) ([]sim.TenantSlice, []Step, float64) {
	n := len(lanes)
	next := make([]int, n)      // next slice per lane
	vtime := make([]float64, n) // virtual time per lane
	seeded := make([]bool, n)   // vtime initialized on first eligibility
	ideal := make([]float64, n) // ideal weighted-share service per lane
	service := make([]float64, n)
	clock := 0
	maxLag := 0.0

	pending := func(i int) bool { return next[i] < len(lanes[i].Slices) }
	eligible := func(i int) bool { return pending(i) && lanes[i].Tenant.Arrive <= clock }

	var order []sim.TenantSlice
	var steps []Step
	for {
		// Collect eligible lanes; if none is eligible but work remains,
		// jump the clock to the earliest arrival (the machine idles).
		var elig []int
		anyPending := false
		for i := 0; i < n; i++ {
			if pending(i) {
				anyPending = true
				if eligible(i) {
					elig = append(elig, i)
				}
			}
		}
		if !anyPending {
			break
		}
		if len(elig) == 0 {
			nextArrive := -1
			for i := 0; i < n; i++ {
				if pending(i) && (nextArrive < 0 || lanes[i].Tenant.Arrive < nextArrive) {
					nextArrive = lanes[i].Tenant.Arrive
				}
			}
			clock = nextArrive
			continue
		}

		// Strict priority: only the top band competes.
		band := lanes[elig[0]].Tenant.Priority
		for _, i := range elig[1:] {
			if p := lanes[i].Tenant.Priority; p > band {
				band = p
			}
		}
		var cands []int
		for _, i := range elig {
			if lanes[i].Tenant.Priority == band {
				cands = append(cands, i)
			}
		}

		// A lane newly eligible starts at the minimum virtual time of its
		// band-mates: no credit for the time it was absent.
		minV, haveMin := 0.0, false
		for _, i := range cands {
			if seeded[i] && (!haveMin || vtime[i] < minV) {
				minV, haveMin = vtime[i], true
			}
		}
		for _, i := range cands {
			if !seeded[i] {
				if haveMin && minV > vtime[i] {
					vtime[i] = minV
				}
				seeded[i] = true
			}
		}

		// Serve the minimum virtual time; ties break by lane index.
		pick := cands[0]
		for _, i := range cands[1:] {
			if vtime[i] < vtime[pick] {
				pick = i
			}
		}

		sl := lanes[pick].Slices[next[pick]]
		cost := float64(sl.Cost)

		// Ideal accounting: while this slice runs, every band-mate with
		// backlog would receive its weight's fraction under fluid GPS.
		wsum := 0
		for _, i := range cands {
			wsum += lanes[i].Tenant.Weight
		}
		for _, i := range cands {
			ideal[i] += cost * float64(lanes[i].Tenant.Weight) / float64(wsum)
		}
		service[pick] += cost
		for _, i := range cands {
			if lag := ideal[i] - service[i]; lag > maxLag {
				maxLag = lag
			}
		}

		vtime[pick] += cost / float64(lanes[pick].Tenant.Weight)
		order = append(order, sim.TenantSlice{Lane: pick, First: sl.First, N: sl.N})
		steps = append(steps, Step{Lane: pick, Slice: next[pick], Clock: clock, VTime: vtime[pick]})
		clock += sl.Cost
		next[pick]++
	}
	return order, steps, maxLag
}
