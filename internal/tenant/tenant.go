// Package tenant schedules K concurrent applications onto ONE
// MorphoSys-class array by temporal partitioning — the multi-task CGRA
// model grafted onto the paper's data scheduler.
//
// Each tenant brings its own application (a partitioned spec), an FB/CM
// quota, a weight, a priority band and an arrival cycle. The on-chip
// memories are partitioned SPATIALLY: the per-tenant quotas must sum to
// at most the machine's Frame Buffer set and Context Memory capacities,
// and each tenant's schedule is produced by the unmodified CDS pipeline
// against a quota-restricted machine view. That is the load-bearing
// design decision: because a tenant never touches another tenant's FB or
// CM bytes, interleaving cluster runs from different tenants cannot
// invalidate anyone's schedule — every tenant's sub-schedule of the
// stitched timeline IS its solo CDS schedule, byte for byte (the
// fairness family's solo-equivalence invariant).
//
// What is time-shared is the RC array and the single DMA channel. The
// interleaver (interleave.go) orders whole cluster runs — never splitting
// one — by weighted-fair queueing with virtual-time credit accounting
// over estimated busy cycles, inside strict priority bands: a
// higher-priority tenant preempts lower bands at the next cluster
// boundary, and within a band lag against the ideal weighted share is
// bounded (verify.Fairness re-derives and checks both properties).
// sim.RunTenants executes the stitched order on the shared machine.
package tenant

import (
	"context"
	"fmt"
	"sort"

	"cds"
	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/conc"
	"cds/internal/scherr"
	"cds/internal/sim"
)

// Quota is one tenant's spatial share of the on-chip memories: FBBytes
// of every Frame Buffer set and CMWords of the Context Memory.
type Quota struct {
	FBBytes int `json:"fb_bytes"`
	CMWords int `json:"cm_words"`
}

// Tenant is one application time-sharing the array.
type Tenant struct {
	// ID names the tenant in reports, invariants and the serve queue.
	ID string `json:"id"`
	// Weight is the tenant's share of the array inside its priority
	// band (>= 1; 0 normalizes to 1).
	Weight int `json:"weight"`
	// Priority is the tenant's band: a higher band preempts lower bands
	// at the next cluster boundary and starves them while it has work —
	// fairness (and the lag bound) hold only among band-mates.
	Priority int `json:"priority,omitempty"`
	// Arrive is the cycle the tenant's work becomes available; none of
	// its DMA transfers issue earlier.
	Arrive int `json:"arrive,omitempty"`
	// Quota is the tenant's FB/CM partition.
	Quota Quota `json:"quota"`
	// Part is the tenant's partitioned application.
	Part *app.Partition `json:"-"`
}

// View returns the quota-restricted machine the tenant's schedule is
// computed against: base with the Frame Buffer set and Context Memory
// narrowed to the quota. Everything the DMA cost model reads (bus
// width, setup cycles, context word size) is untouched, so a visit
// costs the same cycles under the view as on the real machine.
func (t Tenant) View(base arch.Params) arch.Params {
	v := base
	v.Name = base.Name + "/" + t.ID
	v.FBSetBytes = t.Quota.FBBytes
	v.CMWords = t.Quota.CMWords
	return v
}

// Slice is one schedulable unit: a maximal run of consecutive visits of
// one cluster in a lane's schedule (all its RF blocks). Preemption only
// ever happens between slices.
type Slice struct {
	// Lane indexes Plan.Lanes; Cluster is the cluster the run executes.
	Lane    int `json:"lane"`
	Cluster int `json:"cluster"`
	// First/N address visits [First, First+N) of the lane's schedule.
	First int `json:"first"`
	N     int `json:"n"`
	// Cost is the slice's busy cycles (compute + DMA) under the lane's
	// view — the currency of the interleaver's credit accounting.
	Cost int `json:"cost"`
}

// Lane is one tenant's half of the plan: its solo CDS outcome under the
// quota view plus the slice decomposition the interleaver consumed.
type Lane struct {
	Tenant Tenant
	// View is the quota-restricted machine the schedule was computed on.
	View arch.Params
	// Result is the solo CDS run (schedule, timing, allocation) under
	// View — by solo-equivalence, also the tenant's exact sub-schedule
	// of the stitched timeline.
	Result *cds.Result
	// Slices is the lane's cluster-run decomposition, in visit order.
	Slices []Slice
	// Service is the lane's total slice cost (what WFQ metered out).
	Service int
}

// SoloCycles is the lane's solo makespan under its quota view.
func (l *Lane) SoloCycles() int { return l.Result.Timing.TotalCycles }

// SoloLastCompute is the cycle the lane's last visit finishes computing
// in the solo run — the per-lane lower bound the stitched execution can
// never beat (plus the arrival offset).
func (l *Lane) SoloLastCompute() int {
	ve := l.Result.Timing.VisitEnd
	if len(ve) == 0 {
		return 0
	}
	return ve[len(ve)-1]
}

// Step is one interleaver decision, recorded for fairness curves and
// audits: which slice ran, at what plan-time clock, and the credit state
// after charging it.
type Step struct {
	// Lane and Slice identify the emitted slice (Plan.Lanes[Lane].Slices[Slice]).
	Lane  int `json:"lane"`
	Slice int `json:"slice"`
	// Clock is the plan-time cycle the slice was dispatched at (the sum
	// of all prior slice costs plus idle gaps waiting for arrivals).
	Clock int `json:"clock"`
	// VTime is the lane's virtual time after being charged Cost/Weight.
	VTime float64 `json:"vtime"`
}

// Plan is a stitched multi-tenant schedule: per-lane solo CDS schedules
// plus the global emission order and its execution on the shared machine.
type Plan struct {
	// Base is the real machine all quota views were carved from.
	Base arch.Params
	// Lanes holds one entry per tenant, in input order.
	Lanes []*Lane
	// Order is the global emission sequence sim.RunTenants executed.
	Order []sim.TenantSlice
	// Steps mirrors Order with the interleaver's credit bookkeeping.
	Steps []Step
	// Exec is the stitched execution on the shared machine.
	Exec *sim.TenantResult
	// MaxLag is the largest backlog-time lag any lane accumulated
	// against its ideal weighted share (plan-time cycles); always below
	// LagBound for a correct interleaver.
	MaxLag float64
}

// LagBound is the fairness guarantee the plan is checked against: no
// backlogged tenant ever lags its ideal weighted share by more than
// K * max-slice-cost plan-time cycles (K = number of tenants). One
// slice is the preemption granularity, so a tenant can wait at most the
// K-1 others' worst slices plus its own — coarser clusters mean weaker
// fairness, exactly the trade the paper's cluster granularity sets.
func (p *Plan) LagBound() float64 {
	maxCost := 0
	for _, l := range p.Lanes {
		for _, s := range l.Slices {
			if s.Cost > maxCost {
				maxCost = s.Cost
			}
		}
	}
	return float64(maxCost * len(p.Lanes))
}

// Arrivals returns the per-lane arrival cycles in lane order.
func (p *Plan) Arrivals() []int {
	at := make([]int, len(p.Lanes))
	for i, l := range p.Lanes {
		at[i] = l.Tenant.Arrive
	}
	return at
}

// Schedules returns the per-lane schedules in lane order.
func (p *Plan) Schedules() []*cds.Schedule {
	out := make([]*cds.Schedule, len(p.Lanes))
	for i, l := range p.Lanes {
		out[i] = l.Result.Schedule
	}
	return out
}

// normalize defaults zero weights to 1 and returns a defensive copy.
func normalize(tenants []Tenant) []Tenant {
	out := make([]Tenant, len(tenants))
	copy(out, tenants)
	for i := range out {
		if out[i].Weight <= 0 {
			out[i].Weight = 1
		}
	}
	return out
}

// Validate checks the tenant set against the base machine: unique
// non-empty IDs, positive quotas that SUM within the machine (the
// spatial-partition precondition solo-equivalence rests on), sane
// arrival cycles and priorities, and a partition per tenant. All
// rejections match scherr.ErrInvalidSpec.
func Validate(base arch.Params, tenants []Tenant) error {
	if err := base.Validate(); err != nil {
		return fmt.Errorf("tenant: base machine: %w: %w", scherr.ErrInvalidSpec, err)
	}
	if len(tenants) == 0 {
		return fmt.Errorf("tenant: no tenants: %w", scherr.ErrInvalidSpec)
	}
	seen := map[string]bool{}
	sumFB, sumCM := 0, 0
	for i, t := range tenants {
		switch {
		case t.ID == "":
			return fmt.Errorf("tenant: tenants[%d]: empty id: %w", i, scherr.ErrInvalidSpec)
		case seen[t.ID]:
			return fmt.Errorf("tenant: duplicate id %q: %w", t.ID, scherr.ErrInvalidSpec)
		case t.Part == nil:
			return fmt.Errorf("tenant: %s: no application partition: %w", t.ID, scherr.ErrInvalidSpec)
		case t.Quota.FBBytes <= 0:
			return fmt.Errorf("tenant: %s: FB quota must be positive, got %d: %w", t.ID, t.Quota.FBBytes, scherr.ErrInvalidSpec)
		case t.Quota.CMWords <= 0:
			return fmt.Errorf("tenant: %s: CM quota must be positive, got %d: %w", t.ID, t.Quota.CMWords, scherr.ErrInvalidSpec)
		case t.Arrive < 0:
			return fmt.Errorf("tenant: %s: negative arrival cycle %d: %w", t.ID, t.Arrive, scherr.ErrInvalidSpec)
		case t.Priority < 0:
			return fmt.Errorf("tenant: %s: negative priority %d: %w", t.ID, t.Priority, scherr.ErrInvalidSpec)
		}
		seen[t.ID] = true
		sumFB += t.Quota.FBBytes
		sumCM += t.Quota.CMWords
	}
	if sumFB > base.FBSetBytes {
		return fmt.Errorf("tenant: FB quotas sum to %d bytes, machine set holds %d: %w",
			sumFB, base.FBSetBytes, scherr.ErrInvalidSpec)
	}
	if sumCM > base.CMWords {
		return fmt.Errorf("tenant: CM quotas sum to %d words, machine holds %d: %w",
			sumCM, base.CMWords, scherr.ErrInvalidSpec)
	}
	return nil
}

// Schedule builds the multi-tenant plan: per-tenant CDS schedules under
// quota views (fanned out across goroutines), the cluster-run slice
// decomposition, the weighted-fair interleave, and the stitched
// execution on the shared machine.
//
// A tenant whose application cannot be scheduled under its quota fails
// the whole plan with an error naming it (matching scherr.ErrInfeasible)
// — a mix is only admitted whole. Failures carry the scherr taxonomy
// through from the CDS pipeline.
func Schedule(ctx context.Context, base arch.Params, tenants []Tenant) (*Plan, error) {
	tenants = normalize(tenants)
	if err := Validate(base, tenants); err != nil {
		return nil, err
	}
	p := &Plan{Base: base, Lanes: make([]*Lane, len(tenants))}
	errs := make([]error, len(tenants))
	_ = conc.ForEach(ctx, conc.DefaultLimit(), len(tenants), func(i int) error {
		errs[i] = conc.Safe(func() error {
			t := tenants[i]
			view := t.View(base)
			res, err := cds.RunCtx(ctx, cds.CDS, view, t.Part)
			if err != nil {
				return err
			}
			p.Lanes[i] = &Lane{Tenant: t, View: view, Result: res}
			return nil
		})
		return nil
	})
	if err := scherr.FromContext(ctx); err != nil {
		return nil, err
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("tenant: %s: %w", tenants[i].ID, err)
		}
	}
	for i, l := range p.Lanes {
		l.Slices = slices(i, l)
		for _, s := range l.Slices {
			l.Service += s.Cost
		}
	}
	p.Order, p.Steps, p.MaxLag = interleave(p.Lanes)
	exec, err := sim.RunTenants(p.Schedules(), p.Arrivals(), p.Order)
	if err != nil {
		return nil, fmt.Errorf("tenant: executing stitched plan: %w", err)
	}
	p.Exec = exec
	return p, nil
}

// slices decomposes a lane's schedule into maximal same-cluster visit
// runs, priced by sim.VisitCost under the lane's view.
func slices(lane int, l *Lane) []Slice {
	visits := l.Result.Schedule.Visits
	var out []Slice
	for vi := 0; vi < len(visits); {
		first, cluster := vi, visits[vi].Cluster
		cost := 0
		for vi < len(visits) && visits[vi].Cluster == cluster {
			cost += sim.VisitCost(l.View, &visits[vi])
			vi++
		}
		out = append(out, Slice{Lane: lane, Cluster: cluster, First: first, N: vi - first, Cost: cost})
	}
	return out
}

// ByID returns the lane of the given tenant.
func (p *Plan) ByID(id string) (*Lane, bool) {
	for _, l := range p.Lanes {
		if l.Tenant.ID == id {
			return l, true
		}
	}
	return nil, false
}

// SharePoint is one sample of a tenant's cumulative service share.
type SharePoint struct {
	// Cycle is the executed cycle the sample was taken at (the emitting
	// slice's end on the shared machine).
	Cycle int `json:"cycle"`
	// Share is the lane's fraction of all service delivered so far.
	Share float64 `json:"share"`
}

// Curves derives each lane's fairness curve from the executed plan: at
// every slice completion, the lane's cumulative delivered cost over the
// total delivered cost. The last point of lane i's curve converges to
// its weighted share of the work it stayed backlogged for.
func (p *Plan) Curves() [][]SharePoint {
	out := make([][]SharePoint, len(p.Lanes))
	service := make([]int, len(p.Lanes))
	total := 0
	for si, st := range p.Steps {
		cost := p.Lanes[st.Lane].Slices[st.Slice].Cost
		service[st.Lane] += cost
		total += cost
		cycle := p.Exec.SliceEnd[si]
		for li := range p.Lanes {
			out[li] = append(out[li], SharePoint{Cycle: cycle, Share: float64(service[li]) / float64(total)})
		}
	}
	return out
}

// IdealShares returns each lane's weight fraction within the whole mix
// (the dashed reference line of the fairness curve rendering).
func (p *Plan) IdealShares() []float64 {
	sum := 0
	for _, l := range p.Lanes {
		sum += l.Tenant.Weight
	}
	out := make([]float64, len(p.Lanes))
	for i, l := range p.Lanes {
		out[i] = float64(l.Tenant.Weight) / float64(sum)
	}
	return out
}

// SortedIDs returns the tenant IDs in lexical order (stable reporting).
func (p *Plan) SortedIDs() []string {
	ids := make([]string, len(p.Lanes))
	for i, l := range p.Lanes {
		ids[i] = l.Tenant.ID
	}
	sort.Strings(ids)
	return ids
}
