package tenant

import (
	"bytes"
	"context"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"cds"
	"cds/internal/arch"
	"cds/internal/scherr"
	"cds/internal/workloads"
)

// testMix is the canonical two-tenant scenario: the E1 synthetic pipeline
// and the ATR focus-of-attention stage, each under half an M1's memories
// (both run solo at exactly that design point in the paper's Table 1).
func testMix() (arch.Params, []Tenant) {
	base := arch.M1()
	return base, []Tenant{
		{ID: "video", Weight: 2, Quota: Quota{FBBytes: arch.KiB, CMWords: 512}, Part: workloads.E1().Part},
		{ID: "radar", Weight: 1, Quota: Quota{FBBytes: arch.KiB, CMWords: 512}, Part: workloads.ATRFI(0).Part},
	}
}

func mustPlan(t *testing.T, base arch.Params, tenants []Tenant) *Plan {
	t.Helper()
	p, err := Schedule(context.Background(), base, tenants)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	return p
}

func TestValidateRejects(t *testing.T) {
	base, good := testMix()
	mutate := func(f func(ts []Tenant) []Tenant) []Tenant {
		ts := make([]Tenant, len(good))
		copy(ts, good)
		return f(ts)
	}
	cases := []struct {
		name    string
		tenants []Tenant
		want    string
	}{
		{"no tenants", nil, "no tenants"},
		{"empty id", mutate(func(ts []Tenant) []Tenant { ts[0].ID = ""; return ts }), "empty id"},
		{"duplicate id", mutate(func(ts []Tenant) []Tenant { ts[1].ID = ts[0].ID; return ts }), "duplicate id"},
		{"nil partition", mutate(func(ts []Tenant) []Tenant { ts[0].Part = nil; return ts }), "no application partition"},
		{"zero FB quota", mutate(func(ts []Tenant) []Tenant { ts[0].Quota.FBBytes = 0; return ts }), "FB quota"},
		{"zero CM quota", mutate(func(ts []Tenant) []Tenant { ts[0].Quota.CMWords = 0; return ts }), "CM quota"},
		{"negative arrival", mutate(func(ts []Tenant) []Tenant { ts[0].Arrive = -1; return ts }), "negative arrival"},
		{"negative priority", mutate(func(ts []Tenant) []Tenant { ts[0].Priority = -2; return ts }), "negative priority"},
		{"FB oversubscribed", mutate(func(ts []Tenant) []Tenant { ts[0].Quota.FBBytes = base.FBSetBytes; return ts }), "FB quotas sum"},
		{"CM oversubscribed", mutate(func(ts []Tenant) []Tenant { ts[0].Quota.CMWords = base.CMWords; return ts }), "CM quotas sum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ts := normalize(tc.tenants)
			err := Validate(base, ts)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
			if !errors.Is(err, scherr.ErrInvalidSpec) {
				t.Errorf("error does not match scherr.ErrInvalidSpec: %v", err)
			}
		})
	}
}

// TestScheduleTwoTenants runs the whole pipeline on the canonical mix and
// audits the plan end to end.
func TestScheduleTwoTenants(t *testing.T) {
	base, tenants := testMix()
	p := mustPlan(t, base, tenants)
	if len(p.Lanes) != 2 || p.Exec == nil {
		t.Fatalf("plan has %d lanes, exec %v", len(p.Lanes), p.Exec)
	}
	if err := VerifyPlan(context.Background(), p); err != nil {
		t.Fatalf("VerifyPlan: %v", err)
	}
	if p.MaxLag > p.LagBound() {
		t.Errorf("MaxLag %.1f exceeds LagBound %.1f", p.MaxLag, p.LagBound())
	}
	// The order interleaves: with comparable service demands neither
	// tenant should run start-to-finish before the other begins.
	firstLane := p.Order[0].Lane
	mixed := false
	for _, sl := range p.Order {
		if sl.Lane != firstLane {
			mixed = true
			break
		}
	}
	if !mixed {
		t.Error("order never switches lanes — no interleaving happened")
	}
	for _, l := range p.Lanes {
		if l.View.FBSetBytes != l.Tenant.Quota.FBBytes || l.View.CMWords != l.Tenant.Quota.CMWords {
			t.Errorf("%s: view %d/%d does not match quota %d/%d", l.Tenant.ID,
				l.View.FBSetBytes, l.View.CMWords, l.Tenant.Quota.FBBytes, l.Tenant.Quota.CMWords)
		}
		if l.Service <= 0 || len(l.Slices) == 0 {
			t.Errorf("%s: no slices priced (service %d)", l.Tenant.ID, l.Service)
		}
	}
	if _, ok := p.ByID("video"); !ok {
		t.Error("ByID(video) not found")
	}
	if ids := p.SortedIDs(); !reflect.DeepEqual(ids, []string{"radar", "video"}) {
		t.Errorf("SortedIDs = %v", ids)
	}
}

// TestScheduleDeterministic pins the interleaver: same input, same plan.
func TestScheduleDeterministic(t *testing.T) {
	base, tenants := testMix()
	p1 := mustPlan(t, base, tenants)
	p2 := mustPlan(t, base, tenants)
	if !reflect.DeepEqual(p1.Order, p2.Order) {
		t.Errorf("orders differ:\n%v\n%v", p1.Order, p2.Order)
	}
	if !reflect.DeepEqual(p1.Steps, p2.Steps) {
		t.Error("credit bookkeeping differs between identical runs")
	}
	if p1.Exec.TotalCycles != p2.Exec.TotalCycles {
		t.Errorf("makespans differ: %d vs %d", p1.Exec.TotalCycles, p2.Exec.TotalCycles)
	}
}

// TestSoloEquivalenceGolden is the acceptance-criteria golden test: with
// result caching OFF (forcing true recomputation), every lane's schedule
// in the plan must be byte-identical to a fresh solo CDS run under the
// same quota view.
func TestSoloEquivalenceGolden(t *testing.T) {
	prev := cds.SetResultCaching(false)
	defer cds.SetResultCaching(prev)

	base, tenants := testMix()
	p := mustPlan(t, base, tenants)
	if err := SoloEquivalence(context.Background(), p); err != nil {
		t.Fatalf("SoloEquivalence: %v", err)
	}
	// And the detector actually detects: tamper one visit and the audit
	// must flag the lane as diverged from its solo run.
	p.Lanes[0].Result.Schedule.Visits[0].ComputeCycles++
	err := SoloEquivalence(context.Background(), p)
	if err == nil || !errors.Is(err, scherr.ErrVerify) {
		t.Fatalf("tampered plan passed solo-equivalence (err = %v)", err)
	}
	if !strings.Contains(err.Error(), p.Lanes[0].Tenant.ID) {
		t.Errorf("divergence error does not name the tenant: %v", err)
	}
}

// TestWeightedFinishOrder gives two tenants the same application and a
// 3:1 weight split: the heavier tenant must drain first even though the
// tie-break favors the lighter lane's index.
func TestWeightedFinishOrder(t *testing.T) {
	base := arch.M1()
	part := workloads.E1().Part
	tenants := []Tenant{
		{ID: "light", Weight: 1, Quota: Quota{FBBytes: arch.KiB, CMWords: 512}, Part: part},
		{ID: "heavy", Weight: 3, Quota: Quota{FBBytes: arch.KiB, CMWords: 512}, Part: part},
	}
	p := mustPlan(t, base, tenants)
	if err := VerifyPlan(context.Background(), p); err != nil {
		t.Fatalf("VerifyPlan: %v", err)
	}
	if p.Exec.LaneEnd[1] >= p.Exec.LaneEnd[0] {
		t.Errorf("heavy lane ends at %d, light at %d — weights ignored",
			p.Exec.LaneEnd[1], p.Exec.LaneEnd[0])
	}
	shares := p.IdealShares()
	if math.Abs(shares[0]-0.25) > 1e-9 || math.Abs(shares[1]-0.75) > 1e-9 {
		t.Errorf("IdealShares = %v, want [0.25 0.75]", shares)
	}
}

// TestPriorityPreemption: a priority-1 tenant must run all its slices
// before any priority-0 slice is emitted.
func TestPriorityPreemption(t *testing.T) {
	base, tenants := testMix()
	tenants[1].Priority = 1
	p := mustPlan(t, base, tenants)
	if err := VerifyPlan(context.Background(), p); err != nil {
		t.Fatalf("VerifyPlan: %v", err)
	}
	hiSlices := len(p.Lanes[1].Slices)
	for si := 0; si < hiSlices; si++ {
		if p.Order[si].Lane != 1 {
			t.Fatalf("slice %d belongs to lane %d while the priority band is backlogged", si, p.Order[si].Lane)
		}
	}
}

// TestArrivalIdle: when every tenant arrives late the plan clock jumps to
// the first arrival instead of accruing phantom credit at cycle 0.
func TestArrivalIdle(t *testing.T) {
	base, tenants := testMix()
	tenants[0].Arrive = 500
	tenants[1].Arrive = 800
	p := mustPlan(t, base, tenants)
	if err := VerifyPlan(context.Background(), p); err != nil {
		t.Fatalf("VerifyPlan: %v", err)
	}
	if p.Steps[0].Clock != 500 || p.Order[0].Lane != 0 {
		t.Errorf("first step = lane %d at clock %d, want lane 0 at 500",
			p.Order[0].Lane, p.Steps[0].Clock)
	}
	if p.Exec.SliceStart[0] < 500 {
		t.Errorf("execution starts at %d, before the first arrival", p.Exec.SliceStart[0])
	}
}

// TestInfeasibleTenantFailsWholePlan: a quota too small for a tenant's
// application rejects the whole mix, naming the tenant.
func TestInfeasibleTenantFailsWholePlan(t *testing.T) {
	base := arch.M1()
	tenants := []Tenant{
		{ID: "big", Weight: 1, Quota: Quota{FBBytes: 512, CMWords: 256}, Part: workloads.ATRSLD(0).Part},
		{ID: "small", Weight: 1, Quota: Quota{FBBytes: arch.KiB, CMWords: 512}, Part: workloads.ATRFI(0).Part},
	}
	_, err := Schedule(context.Background(), base, tenants)
	if err == nil || !errors.Is(err, scherr.ErrInfeasible) {
		t.Fatalf("error = %v, want scherr.ErrInfeasible", err)
	}
	if !strings.Contains(err.Error(), "big") {
		t.Errorf("error does not name the infeasible tenant: %v", err)
	}
}

// TestCurves: every sample row sums to 1 once service started, and each
// lane's final share reflects the whole mix.
func TestCurves(t *testing.T) {
	base, tenants := testMix()
	p := mustPlan(t, base, tenants)
	curves := p.Curves()
	if len(curves) != len(p.Lanes) {
		t.Fatalf("%d curves for %d lanes", len(curves), len(p.Lanes))
	}
	for si := range p.Steps {
		sum := 0.0
		for li := range curves {
			sum += curves[li][si].Share
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("step %d: shares sum to %f", si, sum)
		}
	}
	last := len(p.Steps) - 1
	for li, l := range p.Lanes {
		want := float64(l.Service) / float64(p.Lanes[0].Service+p.Lanes[1].Service)
		if got := curves[li][last].Share; math.Abs(got-want) > 1e-9 {
			t.Errorf("%s: final share %f, want %f", l.Tenant.ID, got, want)
		}
	}
}

func TestGanttSVG(t *testing.T) {
	base, tenants := testMix()
	p := mustPlan(t, base, tenants)
	var buf bytes.Buffer
	if err := WriteGanttSVG(&buf, p); err != nil {
		t.Fatalf("WriteGanttSVG: %v", err)
	}
	svg := buf.String()
	for _, want := range []string{"<svg", "</svg>", "video", "radar", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Errorf("gantt SVG missing %q", want)
		}
	}
	buf.Reset()
	if err := WriteCurvesSVG(&buf, p); err != nil {
		t.Fatalf("WriteCurvesSVG: %v", err)
	}
	svg = buf.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "stroke-dasharray"} {
		if !strings.Contains(svg, want) {
			t.Errorf("curves SVG missing %q", want)
		}
	}
	if err := WriteGanttSVG(&buf, nil); err == nil {
		t.Error("WriteGanttSVG accepted a nil plan")
	}
}
