package tenant

// Plan verification. Two layers:
//
//   - verify.Fairness re-derives the scheduling-policy invariants
//     (quotas, boundary-only preemption, priority, bounded lag, the
//     execution dominance facts) from the plan's raw parts — it lives in
//     internal/verify with the other invariant families and knows
//     nothing about this package;
//   - solo-equivalence lives HERE because it needs the CDS pipeline:
//     each lane's schedule must be byte-identical to a fresh solo CDS
//     run under the same quota view. The scheduler is a pure function of
//     (machine, partition), so any divergence means the tenant layer
//     leaked state between tenants or mutated a schedule while
//     stitching.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"cds"
	"cds/internal/core"
	"cds/internal/scherr"
	"cds/internal/verify"
)

// VerifyLanes converts the plan into the verifier's self-contained rows.
func (p *Plan) VerifyLanes() []verify.TenantLane {
	lanes := make([]verify.TenantLane, len(p.Lanes))
	for i, l := range p.Lanes {
		lanes[i] = verify.TenantLane{
			ID:       l.Tenant.ID,
			Weight:   l.Tenant.Weight,
			Priority: l.Tenant.Priority,
			Arrive:   l.Tenant.Arrive,
			FBQuota:  l.Tenant.Quota.FBBytes,
			CMQuota:  l.Tenant.Quota.CMWords,
			Schedule: l.Result.Schedule,
		}
	}
	return lanes
}

// VerifyPlan audits the plan end to end: the fairness invariant family
// plus per-lane solo-equivalence. All violations match scherr.ErrVerify.
func VerifyPlan(ctx context.Context, p *Plan) error {
	if p == nil {
		return fmt.Errorf("tenant: nil plan: %w", scherr.ErrVerify)
	}
	if err := verify.Fairness(p.Base, p.VerifyLanes(), p.Order); err != nil {
		return err
	}
	return SoloEquivalence(ctx, p)
}

// canonicalSchedule is the byte-compared projection of a schedule: the
// decisions a scheduler makes, free of pointer-carrying analysis state.
type canonicalSchedule struct {
	Scheduler string          `json:"scheduler"`
	RF        int             `json:"rf"`
	Retained  []core.Retained `json:"retained,omitempty"`
	Visits    []core.Visit    `json:"visits"`
}

// MarshalCanonicalSchedule renders the schedule's decision content as
// deterministic JSON, for byte-level equivalence checks and golden
// files.
func MarshalCanonicalSchedule(s *core.Schedule) ([]byte, error) {
	return json.Marshal(canonicalSchedule{
		Scheduler: s.Scheduler,
		RF:        s.RF,
		Retained:  s.Retained,
		Visits:    s.Visits,
	})
}

// SoloEquivalence re-runs CDS solo for every lane — same quota view,
// same partition — and asserts the plan's lane schedule is byte-identical
// to the fresh run. With result caching enabled the fresh run may be the
// memoized comparison; golden tests disable caching to force a true
// recomputation (cds.SetResultCaching).
func SoloEquivalence(ctx context.Context, p *Plan) error {
	for _, l := range p.Lanes {
		solo, err := cds.RunCtx(ctx, cds.CDS, l.View, l.Tenant.Part)
		if err != nil {
			return fmt.Errorf("tenant: %s: solo re-run: %w", l.Tenant.ID, err)
		}
		want, err := MarshalCanonicalSchedule(solo.Schedule)
		if err != nil {
			return fmt.Errorf("tenant: %s: %w", l.Tenant.ID, err)
		}
		got, err := MarshalCanonicalSchedule(l.Result.Schedule)
		if err != nil {
			return fmt.Errorf("tenant: %s: %w", l.Tenant.ID, err)
		}
		if !bytes.Equal(got, want) {
			return fmt.Errorf("tenant: %s: plan schedule diverges from the solo CDS run under the same quota (%d vs %d bytes canonical): %w",
				l.Tenant.ID, len(got), len(want), scherr.ErrVerify)
		}
	}
	return nil
}
