package tinyrisc

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Disassemble writes the program in its textual assembly form: kernel and
// descriptor tables first, then the instructions with loop labels
// synthesized for branch targets. Assemble reads the same format.
func Disassemble(w io.Writer, p *Program) error {
	if p == nil {
		return fmt.Errorf("tinyrisc: nil program")
	}
	if len(p.Kernels) > 0 {
		fmt.Fprintf(w, ".kernels %s\n", strings.Join(p.Kernels, " "))
	}
	for _, d := range p.Descs {
		switch d.Kind {
		case DescCtx:
			fmt.Fprintf(w, ".desc ctx kernel=%s words=%d\n", d.Kernel, d.Words)
		case DescLoad:
			fmt.Fprintf(w, ".desc load obj=%s datum=%s set=%d addr=%d bytes=%d\n",
				d.Object, d.Datum, d.Set, d.Addr, d.Bytes)
		case DescStore:
			fmt.Fprintf(w, ".desc store obj=%s datum=%s set=%d addr=%d bytes=%d\n",
				d.Object, d.Datum, d.Set, d.Addr, d.Bytes)
		}
	}
	// Branch targets get labels.
	labels := map[int]string{}
	for _, in := range p.Instrs {
		switch in.Op {
		case BNE, BEQ, JMP:
			t := int(in.Imm)
			if _, ok := labels[t]; !ok {
				labels[t] = fmt.Sprintf("L%d", len(labels))
			}
		}
	}
	for pc, in := range p.Instrs {
		if l, ok := labels[pc]; ok {
			fmt.Fprintf(w, "%s:\n", l)
		}
		switch in.Op {
		case BNE, BEQ:
			fmt.Fprintf(w, "\t%s r%d, r%d, %s\n", in.Op, in.Rs, in.Rt, labels[int(in.Imm)])
		case JMP:
			fmt.Fprintf(w, "\tjmp %s\n", labels[int(in.Imm)])
		default:
			fmt.Fprintf(w, "\t%s\n", in)
		}
	}
	return nil
}

// Assemble parses the Disassemble format.
func Assemble(r io.Reader) (*Program, error) {
	p := &Program{}
	labels := map[string]int{}
	type fixup struct {
		instr int
		label string
		line  int
	}
	var fixups []fixup

	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "//") {
			continue
		}
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("tinyrisc: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		if strings.HasSuffix(line, ":") {
			label := strings.TrimSuffix(line, ":")
			if _, dup := labels[label]; dup {
				return nil, fail("duplicate label %q", label)
			}
			labels[label] = len(p.Instrs)
			continue
		}
		fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
		switch fields[0] {
		case ".kernels":
			p.Kernels = append(p.Kernels, fields[1:]...)
		case ".desc":
			if len(fields) < 2 {
				return nil, fail(".desc wants a kind")
			}
			d := Descriptor{}
			switch fields[1] {
			case "ctx":
				d.Kind = DescCtx
			case "load":
				d.Kind = DescLoad
			case "store":
				d.Kind = DescStore
			default:
				return nil, fail("unknown descriptor kind %q", fields[1])
			}
			for _, f := range fields[2:] {
				eq := strings.IndexByte(f, '=')
				if eq <= 0 {
					return nil, fail("malformed descriptor field %q", f)
				}
				key, val := f[:eq], f[eq+1:]
				switch key {
				case "kernel":
					d.Kernel = val
				case "obj":
					d.Object = val
				case "datum":
					d.Datum = val
				case "words", "set", "addr", "bytes":
					n, err := strconv.Atoi(val)
					if err != nil {
						return nil, fail("bad %s value %q", key, val)
					}
					switch key {
					case "words":
						d.Words = n
					case "set":
						d.Set = n
					case "addr":
						d.Addr = n
					case "bytes":
						d.Bytes = n
					}
				default:
					return nil, fail("unknown descriptor field %q", key)
				}
			}
			p.Descs = append(p.Descs, d)
		case "nop":
			p.Instrs = append(p.Instrs, Instr{Op: NOP})
		case "dmaw":
			p.Instrs = append(p.Instrs, Instr{Op: DMAW})
		case "await":
			p.Instrs = append(p.Instrs, Instr{Op: AWAIT})
		case "halt":
			p.Instrs = append(p.Instrs, Instr{Op: HALT})
		case "addi":
			rd, rs, imm, err := regRegImm(fields[1:])
			if err != nil {
				return nil, fail("%v", err)
			}
			p.Instrs = append(p.Instrs, Instr{Op: ADDI, Rd: rd, Rs: rs, Imm: imm})
		case "add", "sub":
			if len(fields) != 4 {
				return nil, fail("%s wants 3 registers", fields[0])
			}
			rd, err1 := reg(fields[1])
			rs, err2 := reg(fields[2])
			rt, err3 := reg(fields[3])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fail("bad register in %q", line)
			}
			op := ADD
			if fields[0] == "sub" {
				op = SUB
			}
			p.Instrs = append(p.Instrs, Instr{Op: op, Rd: rd, Rs: rs, Rt: rt})
		case "bne", "beq":
			if len(fields) != 4 {
				return nil, fail("%s wants rs, rt, label", fields[0])
			}
			rs, err1 := reg(fields[1])
			rt, err2 := reg(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fail("bad register in %q", line)
			}
			op := BNE
			if fields[0] == "beq" {
				op = BEQ
			}
			fixups = append(fixups, fixup{instr: len(p.Instrs), label: fields[3], line: lineNo})
			p.Instrs = append(p.Instrs, Instr{Op: op, Rs: rs, Rt: rt})
		case "jmp":
			if len(fields) != 2 {
				return nil, fail("jmp wants a label")
			}
			fixups = append(fixups, fixup{instr: len(p.Instrs), label: fields[1], line: lineNo})
			p.Instrs = append(p.Instrs, Instr{Op: JMP})
		case "dmac", "cbcast":
			if len(fields) != 2 {
				return nil, fail("%s wants an index", fields[0])
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fail("bad index %q", fields[1])
			}
			op := DMAC
			if fields[0] == "cbcast" {
				op = CBCAST
			}
			p.Instrs = append(p.Instrs, Instr{Op: op, Imm: int32(n)})
		default:
			return nil, fail("unknown mnemonic %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, fx := range fixups {
		target, ok := labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("tinyrisc: line %d: undefined label %q", fx.line, fx.label)
		}
		p.Instrs[fx.instr].Imm = int32(target)
	}
	return p, nil
}

func reg(s string) (uint8, error) {
	if len(s) < 2 || s[0] != 'r' {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 15 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func regRegImm(fields []string) (uint8, uint8, int32, error) {
	if len(fields) != 3 {
		return 0, 0, 0, fmt.Errorf("want rd, rs, imm")
	}
	rd, err := reg(fields[0])
	if err != nil {
		return 0, 0, 0, err
	}
	rs, err := reg(fields[1])
	if err != nil {
		return 0, 0, 0, err
	}
	imm, err := strconv.Atoi(fields[2])
	if err != nil {
		return 0, 0, 0, fmt.Errorf("bad immediate %q", fields[2])
	}
	return rd, rs, int32(imm), nil
}
