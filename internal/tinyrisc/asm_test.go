package tinyrisc

import (
	"strings"
	"testing"

	"cds/internal/arch"
	"cds/internal/codegen"
	"cds/internal/core"
)

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	s, err := (core.CompleteDataScheduler{}).Schedule(testArch(400), pipePartition(5))
	if err != nil {
		t.Fatal(err)
	}
	src, err := codegen.Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	if err := Disassemble(&b, tp); err != nil {
		t.Fatal(err)
	}
	back, err := Assemble(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("%v\nassembly:\n%s", err, b.String())
	}
	if len(back.Instrs) != len(tp.Instrs) {
		t.Fatalf("instr count %d after round trip, want %d", len(back.Instrs), len(tp.Instrs))
	}
	for i := range tp.Instrs {
		if tp.Instrs[i] != back.Instrs[i] {
			t.Fatalf("instr %d: %v != %v", i, back.Instrs[i], tp.Instrs[i])
		}
	}
	if len(back.Descs) != len(tp.Descs) {
		t.Fatalf("descriptor count differs")
	}
	for i := range tp.Descs {
		if tp.Descs[i] != back.Descs[i] {
			t.Fatalf("descriptor %d: %+v != %+v", i, back.Descs[i], tp.Descs[i])
		}
	}
	// The reassembled program still verifies against the source.
	if err := Verify(back, src); err != nil {
		t.Fatal(err)
	}
}

func TestAssembleHandwritten(t *testing.T) {
	text := `
# a tiny countdown program
.kernels dct
.desc ctx kernel=dct words=16
	dmac 0
	dmaw
	addi r1, r0, 2
spin:
	cbcast 0
	addi r1, r1, -1
	bne r1, r0, spin
	halt
`
	p, err := Assemble(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	dev := &countingDevice{}
	if _, err := Run(p, dev, Limits{}); err != nil {
		t.Fatal(err)
	}
	if dev.dmas != 1 || dev.waits != 1 || dev.casts != 2 {
		t.Errorf("side effects = %d/%d/%d, want 1/1/2", dev.dmas, dev.waits, dev.casts)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct{ name, text string }{
		{"unknown mnemonic", "frob r1\n"},
		{"bad register", "addi rX, r0, 1\n"},
		{"register out of range", "addi r16, r0, 1\n"},
		{"undefined label", "jmp nowhere\n"},
		{"duplicate label", "a:\na:\nhalt\n"},
		{"bad desc kind", ".desc banana\n"},
		{"bad desc field", ".desc ctx kernel=x words=ten\n"},
		{"bad cbcast index", "cbcast two\n"},
		{"short bne", "bne r1, r0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Assemble(strings.NewReader(tc.text)); err == nil {
				t.Errorf("accepted %q", tc.text)
			}
		})
	}
}

func TestVerifyRejectsWrongPrograms(t *testing.T) {
	s, err := (core.DataScheduler{}).Schedule(testArch(400), pipePartition(2))
	if err != nil {
		t.Fatal(err)
	}
	src, err := codegen.Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	good, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(f func(*Program)) error {
		bad := &Program{
			Instrs:  append([]Instr(nil), good.Instrs...),
			Descs:   append([]Descriptor(nil), good.Descs...),
			Kernels: append([]string(nil), good.Kernels...),
		}
		f(bad)
		return Verify(bad, src)
	}

	// Dropping the last CBCAST leaves source ops unconsumed.
	if err := mutate(func(p *Program) {
		for i := len(p.Instrs) - 1; i >= 0; i-- {
			if p.Instrs[i].Op == CBCAST {
				p.Instrs = append(p.Instrs[:i], p.Instrs[i+1:]...)
				return
			}
		}
	}); err == nil {
		t.Error("dropped broadcast accepted")
	}
	// Swapping a descriptor's address breaks the replay.
	if err := mutate(func(p *Program) {
		for i := range p.Descs {
			if p.Descs[i].Kind == DescLoad {
				p.Descs[i].Addr += 4
				return
			}
		}
	}); err == nil {
		t.Error("corrupted load address accepted")
	}
	// Corrupting a context descriptor breaks the replay.
	if err := mutate(func(p *Program) {
		for i := range p.Descs {
			if p.Descs[i].Kind == DescCtx {
				p.Descs[i].Words++
				return
			}
		}
	}); err == nil {
		t.Error("corrupted context volume accepted")
	}
	// Renaming a kernel in the table breaks the broadcast match.
	if err := mutate(func(p *Program) {
		p.Kernels[0] = "impostor"
	}); err == nil {
		t.Error("renamed kernel accepted")
	}
	// Duplicating the final store runs past the source program.
	if err := mutate(func(p *Program) {
		for i := len(p.Instrs) - 1; i >= 0; i-- {
			if p.Instrs[i].Op == DMAC {
				extra := p.Instrs[i]
				p.Instrs = append(p.Instrs[:i+1], append([]Instr{extra}, p.Instrs[i+1:]...)...)
				return
			}
		}
	}); err == nil {
		t.Error("duplicated transfer accepted")
	}
}

func TestTimedCyclesTakesLatestTimeline(t *testing.T) {
	dev := &TimedDevice{Arch: arch.M1(), KernelCycles: map[string]int{"k": 500}}
	// Array outlasts DMA.
	if err := dev.StartDMA(Descriptor{Kind: DescLoad, Bytes: 8}); err != nil {
		t.Fatal(err)
	}
	if err := dev.Broadcast("k"); err != nil {
		t.Fatal(err)
	}
	if dev.Cycles() != 500 {
		t.Errorf("Cycles = %d, want 500 (array timeline)", dev.Cycles())
	}
	if err := dev.WaitArray(); err != nil {
		t.Fatal(err)
	}
	// Now a big DMA outlasts everything.
	if err := dev.StartDMA(Descriptor{Kind: DescStore, Bytes: 40000}); err != nil {
		t.Fatal(err)
	}
	if dev.Cycles() <= 500 {
		t.Errorf("Cycles = %d, want DMA-dominated", dev.Cycles())
	}
}

func TestInstrStringUnknown(t *testing.T) {
	if got := (Instr{Op: numOpcodes}).String(); got != "???" {
		t.Errorf("unknown instr renders %q", got)
	}
}
