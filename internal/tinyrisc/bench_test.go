package tinyrisc

import (
	"testing"

	"cds/internal/codegen"
	"cds/internal/core"
	"cds/internal/workloads"
)

// BenchmarkCompileAndRun measures control-code generation plus timed
// interpretation for the MPEG schedule.
func BenchmarkCompileAndRun(b *testing.B) {
	e := workloads.MPEG()
	s, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
	if err != nil {
		b.Fatal(err)
	}
	src, err := codegen.Generate(s)
	if err != nil {
		b.Fatal(err)
	}
	cycles := map[string]int{}
	for _, k := range s.P.App.Kernels {
		cycles[k.Name] = k.ComputeCycles
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp, err := Compile(src)
		if err != nil {
			b.Fatal(err)
		}
		dev := &TimedDevice{Arch: e.Arch, KernelCycles: cycles}
		if _, err := Run(tp, dev, Limits{}); err != nil {
			b.Fatal(err)
		}
	}
}
