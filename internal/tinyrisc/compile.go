package tinyrisc

import (
	"fmt"

	"cds/internal/codegen"
)

// Compile lowers a scheduler-produced transfer program into TinyRISC
// control code:
//
//   - every distinct transfer becomes a DMA descriptor; DMAC launches it
//     and a DMAW before the dependent computation enforces ordering (the
//     simple in-order policy TinyRISC uses);
//
//   - consecutive EXECs of the same kernel (the reuse-factor iteration
//     run of loop fission) become a real hardware-style countdown loop:
//
//     addi r1, r0, N
//     loop: cbcast k
//     addi r1, r1, -1
//     bne  r1, r0, loop
//
// Runs of fewer than MinLoopIters iterations are unrolled instead.
func Compile(p *codegen.Program) (*Program, error) {
	if p == nil {
		return nil, fmt.Errorf("tinyrisc: nil program")
	}
	const minLoopIters = 2

	out := &Program{}
	kernelID := map[string]int{}
	kid := func(name string) int32 {
		id, ok := kernelID[name]
		if !ok {
			id = len(out.Kernels)
			kernelID[name] = id
			out.Kernels = append(out.Kernels, name)
		}
		return int32(id)
	}
	emit := func(in Instr) { out.Instrs = append(out.Instrs, in) }
	desc := func(d Descriptor) int32 {
		out.Descs = append(out.Descs, d)
		return int32(len(out.Descs) - 1)
	}

	// pendingDMA tracks whether transfers were launched since the last
	// DMAW; computation must wait for them.
	pendingDMA := false
	wait := func() {
		if pendingDMA {
			emit(Instr{Op: DMAW})
			pendingDMA = false
		}
	}

	instrs := p.Instrs
	for i := 0; i < len(instrs); i++ {
		in := instrs[i]
		switch in.Op {
		case codegen.OpLdCtxt:
			emit(Instr{Op: DMAC, Imm: desc(Descriptor{
				Kind: DescCtx, Kernel: in.Kernel, Words: in.Words,
			})})
			pendingDMA = true
		case codegen.OpLdFB:
			emit(Instr{Op: DMAC, Imm: desc(Descriptor{
				Kind: DescLoad, Object: in.Object, Datum: in.Datum,
				Set: in.Set, Addr: in.Addr, Bytes: in.Bytes,
			})})
			pendingDMA = true
		case codegen.OpStFB:
			// Stores read results the array produced: the array must
			// be idle before the drain starts.
			emit(Instr{Op: AWAIT})
			emit(Instr{Op: DMAC, Imm: desc(Descriptor{
				Kind: DescStore, Object: in.Object, Datum: in.Datum,
				Set: in.Set, Addr: in.Addr, Bytes: in.Bytes,
			})})
			pendingDMA = true
		case codegen.OpExec:
			// Count the run of consecutive EXECs of this kernel.
			run := 1
			for i+run < len(instrs) &&
				instrs[i+run].Op == codegen.OpExec &&
				instrs[i+run].Kernel == in.Kernel {
				run++
			}
			wait()
			id := kid(in.Kernel)
			if run < minLoopIters {
				emit(Instr{Op: CBCAST, Imm: id})
			} else {
				// r1 = run; loop: cbcast; r1--; bne r1, r0, loop
				emit(Instr{Op: ADDI, Rd: 1, Rs: 0, Imm: int32(run)})
				loopStart := len(out.Instrs)
				emit(Instr{Op: CBCAST, Imm: id})
				emit(Instr{Op: ADDI, Rd: 1, Rs: 1, Imm: -1})
				emit(Instr{Op: BNE, Rs: 1, Rt: 0, Imm: int32(loopStart)})
			}
			i += run - 1
		default:
			return nil, fmt.Errorf("tinyrisc: cannot compile op %v", in.Op)
		}
	}
	wait()
	emit(Instr{Op: HALT})
	return out, nil
}

// Verify interprets the compiled program and checks that its side-effect
// sequence (context loads, FB fills/drains, kernel broadcasts) replays
// the source transfer program operation for operation.
func Verify(tp *Program, src *codegen.Program) error {
	v := &verifier{src: src.Instrs}
	if _, err := Run(tp, v, Limits{}); err != nil {
		return err
	}
	// Skip any trailing waits in accounting; every source op must be
	// consumed.
	if v.pos != len(v.src) {
		return fmt.Errorf("tinyrisc: program replayed %d of %d operations", v.pos, len(v.src))
	}
	return nil
}

// verifier checks the side-effect stream against the source program.
type verifier struct {
	src []codegen.Instr
	pos int
}

func (v *verifier) next() (codegen.Instr, error) {
	if v.pos >= len(v.src) {
		return codegen.Instr{}, fmt.Errorf("side effect beyond the source program (%d ops)", len(v.src))
	}
	in := v.src[v.pos]
	v.pos++
	return in, nil
}

func (v *verifier) StartDMA(d Descriptor) error {
	in, err := v.next()
	if err != nil {
		return err
	}
	switch d.Kind {
	case DescCtx:
		if in.Op != codegen.OpLdCtxt || in.Kernel != d.Kernel || in.Words != d.Words {
			return fmt.Errorf("expected %v, got ctx load of %s/%d", in, d.Kernel, d.Words)
		}
	case DescLoad:
		if in.Op != codegen.OpLdFB || in.Object != d.Object || in.Addr != d.Addr || in.Bytes != d.Bytes {
			return fmt.Errorf("expected %v, got load of %s@%d", in, d.Object, d.Addr)
		}
	case DescStore:
		if in.Op != codegen.OpStFB || in.Object != d.Object || in.Addr != d.Addr || in.Bytes != d.Bytes {
			return fmt.Errorf("expected %v, got store of %s@%d", in, d.Object, d.Addr)
		}
	}
	return nil
}

func (v *verifier) WaitDMA() error { return nil }

func (v *verifier) WaitArray() error { return nil }

func (v *verifier) Broadcast(kernel string) error {
	in, err := v.next()
	if err != nil {
		return err
	}
	if in.Op != codegen.OpExec || in.Kernel != kernel {
		return fmt.Errorf("expected %v, got broadcast of %s", in, kernel)
	}
	return nil
}
