package tinyrisc

import (
	"fmt"

	"cds/internal/arch"
)

// TimedDevice executes a control program with cycle accounting: each DMA
// descriptor costs its bus time on the (single) DMA channel, each
// broadcast costs the kernel's compute cycles on the array, and DMAW
// joins the two timelines. For the straight-line code Compile emits, the
// resulting time equals the serial (non-overlapped) execution model
// exactly — the cross-check TestTimedMatchesSerialSim pins.
type TimedDevice struct {
	Arch arch.Params
	// KernelCycles maps a kernel name to its per-iteration compute
	// cycles.
	KernelCycles map[string]int

	now       int // TinyRISC issue timeline
	dmaFree   int // DMA channel timeline
	arrayFree int // RC array timeline
}

// StartDMA implements Device.
func (d *TimedDevice) StartDMA(desc Descriptor) error {
	start := d.dmaFree
	if d.now > start {
		start = d.now // TinyRISC issues the descriptor in program order
	}
	var cost int
	switch desc.Kind {
	case DescCtx:
		cost = d.Arch.ContextCycles(desc.Words)
	case DescLoad, DescStore:
		cost = d.Arch.DataCycles(desc.Bytes)
	default:
		return fmt.Errorf("tinyrisc: unknown descriptor kind %v", desc.Kind)
	}
	d.dmaFree = start + cost
	return nil
}

// WaitDMA implements Device.
func (d *TimedDevice) WaitDMA() error {
	if d.dmaFree > d.now {
		d.now = d.dmaFree
	}
	return nil
}

// Broadcast implements Device. Issue is non-blocking: the array picks the
// work up when it is free; TinyRISC continues (e.g. programming the next
// cluster's DMA transfers) immediately.
func (d *TimedDevice) Broadcast(kernel string) error {
	c, ok := d.KernelCycles[kernel]
	if !ok {
		return fmt.Errorf("tinyrisc: no cycle count for kernel %q", kernel)
	}
	start := d.arrayFree
	if d.now > start {
		start = d.now
	}
	d.arrayFree = start + c
	return nil
}

// WaitArray implements Device.
func (d *TimedDevice) WaitArray() error {
	if d.arrayFree > d.now {
		d.now = d.arrayFree
	}
	return nil
}

// Cycles returns the total execution time observed so far: the latest of
// the issue, array and DMA timelines.
func (d *TimedDevice) Cycles() int {
	t := d.now
	if d.dmaFree > t {
		t = d.dmaFree
	}
	if d.arrayFree > t {
		t = d.arrayFree
	}
	return t
}
