// Package tinyrisc models the RISC control processor that sequences
// MorphoSys ("MorphoSys operation is controlled by a RISC processor"): a
// small 32-bit ISA with the DMA-control and context-broadcast
// instructions TinyRISC adds to a standard core, an assembler, an
// interpreter, and a backend that compiles a scheduler-produced transfer
// program (codegen.Program) into a real instruction stream with hardware
// loops for the reuse-factor iteration blocks.
//
// The point of the package is fidelity at the bottom of the stack: the
// schedules do not just summarize into counters — they compile to control
// code whose execution replays exactly the transfer/execute sequence the
// scheduler planned (verified instruction-for-instruction in tests).
package tinyrisc

import (
	"fmt"
)

// Opcode is a TinyRISC operation.
type Opcode uint8

// The instruction set. The rd/rs/rt fields address 16 registers; r0 is
// hardwired to zero (writes are ignored).
const (
	// NOP does nothing.
	NOP Opcode = iota
	// ADDI rd, rs, imm: rd = rs + imm.
	ADDI
	// ADD rd, rs, rt: rd = rs + rt.
	ADD
	// SUB rd, rs, rt: rd = rs - rt.
	SUB
	// BNE rs, rt, target: branch to absolute target when rs != rt.
	BNE
	// BEQ rs, rt, target: branch to absolute target when rs == rt.
	BEQ
	// JMP target: unconditional branch.
	JMP
	// DMAC desc: program the DMA with transfer descriptor desc and
	// start it (context load, FB fill or FB drain per the descriptor).
	DMAC
	// DMAW: stall until the DMA channel is idle.
	DMAW
	// CBCAST kid: broadcast a kernel's contexts from the Context Memory
	// to the array and execute one iteration of kernel kid. Issue is
	// non-blocking: TinyRISC may program further DMA transfers while
	// the array computes.
	CBCAST
	// AWAIT stalls until the array is idle (results are in the FB).
	AWAIT
	// HALT stops the processor.
	HALT
	numOpcodes
)

var opNames = [...]string{
	NOP: "nop", ADDI: "addi", ADD: "add", SUB: "sub",
	BNE: "bne", BEQ: "beq", JMP: "jmp",
	DMAC: "dmac", DMAW: "dmaw", CBCAST: "cbcast", AWAIT: "await", HALT: "halt",
}

func (o Opcode) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Instr is one decoded instruction.
type Instr struct {
	Op         Opcode
	Rd, Rs, Rt uint8
	// Imm carries the immediate (ADDI), the branch target (BNE/BEQ/
	// JMP), the descriptor index (DMAC) or the kernel id (CBCAST).
	Imm int32
}

func (i Instr) String() string {
	switch i.Op {
	case NOP, DMAW, AWAIT, HALT:
		return i.Op.String()
	case ADDI:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs, i.Imm)
	case ADD, SUB:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs, i.Rt)
	case BNE, BEQ:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rs, i.Rt, i.Imm)
	case JMP:
		return fmt.Sprintf("jmp %d", i.Imm)
	case DMAC:
		return fmt.Sprintf("dmac %d", i.Imm)
	case CBCAST:
		return fmt.Sprintf("cbcast %d", i.Imm)
	}
	return "???"
}

// DescKind classifies a DMA transfer descriptor.
type DescKind uint8

const (
	// DescCtx loads context words into the Context Memory.
	DescCtx DescKind = iota
	// DescLoad fills a Frame Buffer region from external memory.
	DescLoad
	// DescStore drains a Frame Buffer region to external memory.
	DescStore
)

func (k DescKind) String() string {
	switch k {
	case DescCtx:
		return "ctx"
	case DescLoad:
		return "load"
	case DescStore:
		return "store"
	}
	return "desc(?)"
}

// Descriptor is one pre-programmed DMA transfer, the unit DMAC launches.
// TinyRISC programs the real DMA with a handful of register writes; the
// descriptor table models the same information.
type Descriptor struct {
	Kind DescKind
	// Kernel names the context group for DescCtx.
	Kernel string
	// Object/Datum name the FB-resident instance for loads and stores.
	Object, Datum string
	// Set/Addr/Bytes locate the FB region; Words is the context volume.
	Set, Addr, Bytes, Words int
}

// Program is an assembled TinyRISC program plus its descriptor and kernel
// tables.
type Program struct {
	Instrs []Instr
	Descs  []Descriptor
	// Kernels maps CBCAST kernel ids to kernel names.
	Kernels []string
}

// Device receives the side effects of DMAC/DMAW/CBCAST/AWAIT execution.
// The interpreter is agnostic to what they mean; tests and the verifier
// implement this to observe the sequence.
type Device interface {
	// StartDMA begins the transfer described by d.
	StartDMA(d Descriptor) error
	// WaitDMA blocks until the channel is idle.
	WaitDMA() error
	// Broadcast executes one iteration of the named kernel.
	Broadcast(kernel string) error
	// WaitArray blocks until the array is idle.
	WaitArray() error
}

// Limits bound interpretation.
type Limits struct {
	// MaxSteps aborts runaway programs (0 = 10 million).
	MaxSteps int
}

// Run interprets the program against the device. It returns the number of
// instructions executed.
func Run(p *Program, dev Device, lim Limits) (int, error) {
	maxSteps := lim.MaxSteps
	if maxSteps == 0 {
		maxSteps = 10_000_000
	}
	var regs [16]int32
	pc := 0
	steps := 0
	for {
		if pc < 0 || pc >= len(p.Instrs) {
			return steps, fmt.Errorf("tinyrisc: pc %d out of program (len %d)", pc, len(p.Instrs))
		}
		if steps >= maxSteps {
			return steps, fmt.Errorf("tinyrisc: exceeded %d steps (runaway loop?)", maxSteps)
		}
		in := p.Instrs[pc]
		steps++
		next := pc + 1
		switch in.Op {
		case NOP:
		case ADDI:
			writeReg(&regs, in.Rd, regs[in.Rs]+in.Imm)
		case ADD:
			writeReg(&regs, in.Rd, regs[in.Rs]+regs[in.Rt])
		case SUB:
			writeReg(&regs, in.Rd, regs[in.Rs]-regs[in.Rt])
		case BNE:
			if regs[in.Rs] != regs[in.Rt] {
				next = int(in.Imm)
			}
		case BEQ:
			if regs[in.Rs] == regs[in.Rt] {
				next = int(in.Imm)
			}
		case JMP:
			next = int(in.Imm)
		case DMAC:
			if in.Imm < 0 || int(in.Imm) >= len(p.Descs) {
				return steps, fmt.Errorf("tinyrisc: pc %d: descriptor %d out of table (%d)", pc, in.Imm, len(p.Descs))
			}
			if err := dev.StartDMA(p.Descs[in.Imm]); err != nil {
				return steps, fmt.Errorf("tinyrisc: pc %d: %w", pc, err)
			}
		case DMAW:
			if err := dev.WaitDMA(); err != nil {
				return steps, fmt.Errorf("tinyrisc: pc %d: %w", pc, err)
			}
		case AWAIT:
			if err := dev.WaitArray(); err != nil {
				return steps, fmt.Errorf("tinyrisc: pc %d: %w", pc, err)
			}
		case CBCAST:
			if in.Imm < 0 || int(in.Imm) >= len(p.Kernels) {
				return steps, fmt.Errorf("tinyrisc: pc %d: kernel id %d out of table (%d)", pc, in.Imm, len(p.Kernels))
			}
			if err := dev.Broadcast(p.Kernels[in.Imm]); err != nil {
				return steps, fmt.Errorf("tinyrisc: pc %d: %w", pc, err)
			}
		case HALT:
			return steps, nil
		default:
			return steps, fmt.Errorf("tinyrisc: pc %d: illegal opcode %d", pc, in.Op)
		}
		pc = next
	}
}

// writeReg honors the hardwired-zero register.
func writeReg(regs *[16]int32, rd uint8, v int32) {
	if rd != 0 {
		regs[rd] = v
	}
}
