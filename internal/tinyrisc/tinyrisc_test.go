package tinyrisc

import (
	"strings"
	"testing"

	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/codegen"
	"cds/internal/core"
	"cds/internal/sim"
	"cds/internal/workloads"
)

// countingDevice tallies side effects.
type countingDevice struct {
	dmas, waits, casts int
	kernels            []string
}

func (d *countingDevice) StartDMA(Descriptor) error { d.dmas++; return nil }
func (d *countingDevice) WaitDMA() error            { d.waits++; return nil }
func (d *countingDevice) WaitArray() error          { return nil }
func (d *countingDevice) Broadcast(k string) error {
	d.casts++
	d.kernels = append(d.kernels, k)
	return nil
}

func TestInterpreterBasics(t *testing.T) {
	// r1 = 3; loop: cbcast 0; r1--; bne r1,r0,loop; halt
	p := &Program{
		Instrs: []Instr{
			{Op: ADDI, Rd: 1, Rs: 0, Imm: 3},
			{Op: CBCAST, Imm: 0},
			{Op: ADDI, Rd: 1, Rs: 1, Imm: -1},
			{Op: BNE, Rs: 1, Rt: 0, Imm: 1},
			{Op: HALT},
		},
		Kernels: []string{"dct"},
	}
	dev := &countingDevice{}
	steps, err := Run(p, dev, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if dev.casts != 3 {
		t.Errorf("casts = %d, want 3", dev.casts)
	}
	if steps != 1+3*3+1 {
		t.Errorf("steps = %d, want 11", steps)
	}
}

func TestRegisterZeroHardwired(t *testing.T) {
	p := &Program{Instrs: []Instr{
		{Op: ADDI, Rd: 0, Rs: 0, Imm: 42}, // write to r0 ignored
		{Op: BEQ, Rs: 0, Rt: 0, Imm: 3},   // r0 == r0: skip the bad jump
		{Op: JMP, Imm: -7},
		{Op: HALT},
	}}
	if _, err := Run(p, &countingDevice{}, Limits{}); err != nil {
		t.Fatal(err)
	}
}

func TestInterpreterErrors(t *testing.T) {
	dev := &countingDevice{}
	// PC escapes.
	if _, err := Run(&Program{Instrs: []Instr{{Op: JMP, Imm: 99}}}, dev, Limits{}); err == nil {
		t.Error("wild jump accepted")
	}
	// Runaway loop hits the step limit.
	if _, err := Run(&Program{Instrs: []Instr{{Op: JMP, Imm: 0}}}, dev, Limits{MaxSteps: 100}); err == nil {
		t.Error("runaway loop not caught")
	}
	// Descriptor/kernel table bounds.
	if _, err := Run(&Program{Instrs: []Instr{{Op: DMAC, Imm: 0}}}, dev, Limits{}); err == nil {
		t.Error("missing descriptor accepted")
	}
	if _, err := Run(&Program{Instrs: []Instr{{Op: CBCAST, Imm: 5}, {Op: HALT}}}, dev, Limits{}); err == nil {
		t.Error("missing kernel accepted")
	}
	// Illegal opcode.
	if _, err := Run(&Program{Instrs: []Instr{{Op: numOpcodes}}}, dev, Limits{}); err == nil {
		t.Error("illegal opcode accepted")
	}
}

func pipePartition(iters int) *app.Partition {
	b := app.NewBuilder("pipe", iters).
		Datum("inA", 100).
		Datum("x", 50).
		Datum("m", 30).
		Datum("r2", 60).
		Datum("rB", 40).
		Datum("out1", 20).
		Datum("out2", 20)
	b.Kernel("k1", 16, 1000).In("inA", "x").Out("m")
	b.Kernel("k2", 16, 1000).In("m").Out("r2", "rB")
	b.Kernel("k3", 16, 1000).In("r2").Out("out1")
	b.Kernel("k4", 16, 1000).In("inA", "rB").Out("out2")
	return app.MustPartition(b.MustBuild(), 2, 2, 1, 1)
}

func testArch(fb int) arch.Params {
	p := arch.M1()
	p.FBSetBytes = fb
	p.CMWords = 64
	return p
}

// TestCompileAndVerify compiles transfer programs for all schedulers on
// the pipe app and on the MPEG experiment, executing each and replaying
// the exact side-effect sequence of the source.
func TestCompileAndVerify(t *testing.T) {
	cases := []struct {
		name string
		part *app.Partition
		pa   arch.Params
	}{
		{"pipe", pipePartition(5), testArch(400)},
		{"mpeg", workloads.MPEG().Part, workloads.MPEG().Arch},
	}
	for _, tc := range cases {
		for _, sched := range []core.Scheduler{core.Basic{}, core.DataScheduler{}, core.CompleteDataScheduler{}} {
			s, err := sched.Schedule(tc.pa, tc.part)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, sched.Name(), err)
			}
			src, err := codegen.Generate(s)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, sched.Name(), err)
			}
			tp, err := Compile(src)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, sched.Name(), err)
			}
			if err := Verify(tp, src); err != nil {
				t.Fatalf("%s/%s: %v", tc.name, sched.Name(), err)
			}
		}
	}
}

// TestCompileUsesLoops: with RF > 1, the iteration runs compile to
// countdown loops, so the TinyRISC program is much smaller than the
// unrolled transfer program.
func TestCompileUsesLoops(t *testing.T) {
	part := pipePartition(12)
	s, err := (core.DataScheduler{}).Schedule(testArch(2048), part)
	if err != nil {
		t.Fatal(err)
	}
	if s.RF < 2 {
		t.Fatalf("RF = %d, test needs loop fission", s.RF)
	}
	src, err := codegen.Generate(s)
	if err != nil {
		t.Fatal(err)
	}
	tp, err := Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	hasLoop := false
	for _, in := range tp.Instrs {
		if in.Op == BNE {
			hasLoop = true
		}
	}
	if !hasLoop {
		t.Error("no countdown loop emitted despite RF > 1")
	}
	// The loop form must still replay the full unrolled sequence.
	if err := Verify(tp, src); err != nil {
		t.Fatal(err)
	}
	// And it must be denser than one instruction per source op.
	execs := src.Count(codegen.OpExec)
	casts := 0
	for _, in := range tp.Instrs {
		if in.Op == CBCAST {
			casts++
		}
	}
	if casts >= execs {
		t.Errorf("static CBCASTs %d, source EXECs %d: loops should compress", casts, execs)
	}
}

func TestCompileNil(t *testing.T) {
	if _, err := Compile(nil); err == nil {
		t.Error("nil program compiled")
	}
}

func TestInstrStrings(t *testing.T) {
	tests := []struct {
		in   Instr
		want string
	}{
		{Instr{Op: ADDI, Rd: 1, Rs: 0, Imm: 5}, "addi r1, r0, 5"},
		{Instr{Op: BNE, Rs: 1, Rt: 0, Imm: 7}, "bne r1, r0, 7"},
		{Instr{Op: DMAC, Imm: 3}, "dmac 3"},
		{Instr{Op: CBCAST, Imm: 2}, "cbcast 2"},
		{Instr{Op: HALT}, "halt"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
	if !strings.Contains(Opcode(99).String(), "99") {
		t.Error("unknown opcode string")
	}
	if DescCtx.String() != "ctx" || DescStore.String() != "store" {
		t.Error("DescKind strings")
	}
}

// TestTimedMatchesSerialSim cross-validates independent models. The
// compiled control code issues DMA descriptors without blocking on the
// array (CBCAST is non-blocking; AWAIT guards only the stores), so its
// cycle-accounted execution lands BETWEEN the fully serial analytic model
// and the aggressively overlapped one:
//
//	max(compute, serial DMA busy) <= timed <= serial + setup slack
//
// (the slack covers the finer DMA-burst granularity of the control code:
// one setup per instance and per kernel context group instead of one per
// batched visit movement).
func TestTimedMatchesSerialSim(t *testing.T) {
	cases := []struct {
		name string
		part *app.Partition
		pa   arch.Params
	}{
		{"pipe", pipePartition(5), testArch(400)},
		{"mpeg", workloads.MPEG().Part, workloads.MPEG().Arch},
		{"e1", workloads.E1().Part, workloads.E1().Arch},
	}
	for _, tc := range cases {
		for _, sched := range []core.Scheduler{core.Basic{}, core.DataScheduler{}, core.CompleteDataScheduler{}} {
			s, err := sched.Schedule(tc.pa, tc.part)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, sched.Name(), err)
			}
			src, err := codegen.Generate(s)
			if err != nil {
				t.Fatal(err)
			}
			tp, err := Compile(src)
			if err != nil {
				t.Fatal(err)
			}
			cycles := map[string]int{}
			for _, k := range s.P.App.Kernels {
				cycles[k.Name] = k.ComputeCycles
			}
			dev := &TimedDevice{Arch: tc.pa, KernelCycles: cycles}
			if _, err := Run(tp, dev, Limits{}); err != nil {
				t.Fatalf("%s/%s: %v", tc.name, sched.Name(), err)
			}
			serial, err := sim.RunSerial(s)
			if err != nil {
				t.Fatal(err)
			}
			lower := serial.ComputeCycles
			if serial.DMABusy() > lower {
				lower = serial.DMABusy()
			}
			if dev.Cycles() < lower {
				t.Errorf("%s/%s: control-code time %d below the resource bound %d",
					tc.name, sched.Name(), dev.Cycles(), lower)
			}
			if limit := serial.TotalCycles + serial.TotalCycles/50; dev.Cycles() > limit {
				t.Errorf("%s/%s: control-code time %d exceeds the serial model %d by more than 2%%",
					tc.name, sched.Name(), dev.Cycles(), serial.TotalCycles)
			}
			// On the transfer-heavy MPEG workload the issue-level
			// overlap must beat the serial model outright.
			if tc.name == "mpeg" && dev.Cycles() >= serial.TotalCycles {
				t.Errorf("%s/%s: control code gained nothing over serial execution (%d >= %d)",
					tc.name, sched.Name(), dev.Cycles(), serial.TotalCycles)
			}
		}
	}
}

func TestTimedDeviceErrors(t *testing.T) {
	dev := &TimedDevice{Arch: arch.M1(), KernelCycles: map[string]int{}}
	if err := dev.Broadcast("ghost"); err == nil {
		t.Error("unknown kernel accepted")
	}
	if err := dev.StartDMA(Descriptor{Kind: DescKind(9)}); err == nil {
		t.Error("unknown descriptor kind accepted")
	}
}
