package trace

// The derived-analytics layer: everything here is computed from the raw
// span timeline alone, so any recorded run — simulator, replayed
// journal, diffed pair — answers the same questions: how busy was each
// resource, how much transfer time hid under computation, and where did
// the makespan actually go.

import "sort"

// ClusterStats is one cluster's slice of the timeline.
type ClusterStats struct {
	Cluster int `json:"cluster"`
	// ComputeCycles is the cluster's total RC-array busy time.
	ComputeCycles int `json:"compute_cycles"`
	// CtxCycles, LoadCycles and StoreCycles are the cluster's DMA busy
	// times by traffic kind.
	CtxCycles   int `json:"ctx_cycles"`
	LoadCycles  int `json:"load_cycles"`
	StoreCycles int `json:"store_cycles"`
	// LoadBytes and StoreBytes are the cluster's data volumes; CtxWords
	// its context volume.
	LoadBytes  int `json:"load_bytes"`
	StoreBytes int `json:"store_bytes"`
	CtxWords   int `json:"ctx_words"`
	// Visits counts the cluster's visits.
	Visits int `json:"visits"`
}

// CriticalPath decomposes the makespan into where the cycles went. The
// five buckets tile the makespan exactly:
//
//	Makespan = Compute + ExposedCtx + ExposedLoad + ExposedStore + Dead
//
// Compute counts every RC-array busy cycle (transfers under it are
// free — that is the overlap the schedulers fight for). The Exposed
// buckets count DMA cycles the RC array sat idle for, attributed to the
// transfer kind that occupied the channel. Dead counts cycles where
// both resources idled (scheduling gaps; 0 for the simulator's
// work-conserving model except where the model forces serialization).
type CriticalPath struct {
	Compute      int `json:"compute"`
	ExposedCtx   int `json:"exposed_ctx"`
	ExposedLoad  int `json:"exposed_load"`
	ExposedStore int `json:"exposed_store"`
	Dead         int `json:"dead"`
}

// Analytics is the derived report over one timeline.
type Analytics struct {
	Label    string `json:"label"`
	Makespan int    `json:"makespan"`

	// DMABusy/RCBusy are the per-resource busy cycle totals;
	// DMAUtilPct/RCUtilPct the same as a percentage of the makespan.
	DMABusy    int     `json:"dma_busy"`
	RCBusy     int     `json:"rc_busy"`
	DMAUtilPct float64 `json:"dma_util_pct"`
	RCUtilPct  float64 `json:"rc_util_pct"`

	// CtxCycles/LoadCycles/StoreCycles split the DMA busy time by kind.
	CtxCycles   int `json:"ctx_cycles"`
	LoadCycles  int `json:"load_cycles"`
	StoreCycles int `json:"store_cycles"`

	// OverlapCycles counts cycles where the DMA channel was busy UNDER
	// a computing RC array — the paper's hidden-transfer time.
	// OverlapPct is that as a percentage of all DMA busy cycles: 100
	// means every transfer hid under computation (perfect prefetch),
	// 0 means every transfer was exposed on the critical path.
	OverlapCycles int     `json:"overlap_cycles"`
	OverlapPct    float64 `json:"overlap_pct"`

	// Path is the critical-path decomposition of the makespan.
	Path CriticalPath `json:"path"`

	// FBSwitches counts Frame Buffer set switches.
	FBSwitches int `json:"fb_switches"`
	// CMLoads counts Context Memory load bursts (context spans).
	CMLoads int `json:"cm_loads"`

	// Clusters is the per-cluster breakdown, ordered by cluster index.
	Clusters []ClusterStats `json:"clusters,omitempty"`
}

// Analyze computes the derived analytics of one timeline.
func Analyze(tl *Timeline) Analytics {
	a := Analytics{Label: tl.Label, Makespan: tl.Makespan}
	byCluster := map[int]*ClusterStats{}
	cluster := func(c int) *ClusterStats {
		cs, ok := byCluster[c]
		if !ok {
			cs = &ClusterStats{Cluster: c}
			byCluster[c] = cs
		}
		return cs
	}
	for _, s := range tl.Spans {
		cs := cluster(s.Cluster)
		switch s.Kind {
		case KindCompute:
			a.RCBusy += s.Dur()
			cs.ComputeCycles += s.Dur()
			cs.Visits++
		case KindContext, KindPrefetch:
			a.DMABusy += s.Dur()
			a.CtxCycles += s.Dur()
			a.CMLoads++
			cs.CtxCycles += s.Dur()
			cs.CtxWords += s.Words
		case KindLoad:
			a.DMABusy += s.Dur()
			a.LoadCycles += s.Dur()
			cs.LoadCycles += s.Dur()
			cs.LoadBytes += s.Bytes
		case KindStore:
			a.DMABusy += s.Dur()
			a.StoreCycles += s.Dur()
			cs.StoreCycles += s.Dur()
			cs.StoreBytes += s.Bytes
		}
	}
	for _, m := range tl.Marks {
		if m.Kind == MarkFBSwitch {
			a.FBSwitches++
		}
	}
	if tl.Makespan > 0 {
		a.DMAUtilPct = 100 * float64(a.DMABusy) / float64(tl.Makespan)
		a.RCUtilPct = 100 * float64(a.RCBusy) / float64(tl.Makespan)
	}

	a.OverlapCycles, a.Path = decompose(tl)
	if a.DMABusy > 0 {
		a.OverlapPct = 100 * float64(a.OverlapCycles) / float64(a.DMABusy)
	}

	clusters := make([]int, 0, len(byCluster))
	for c := range byCluster {
		clusters = append(clusters, c)
	}
	sort.Ints(clusters)
	for _, c := range clusters {
		a.Clusters = append(a.Clusters, *byCluster[c])
	}
	return a
}

// decompose sweeps the two resource tracks through every elementary
// interval between span boundaries and buckets each cycle by what the
// two resources were doing: both busy (overlap), DMA-only (exposed
// transfer time, attributed by kind), RC-only (compute with a quiet
// channel) and both idle (dead time).
func decompose(tl *Timeline) (overlap int, path CriticalPath) {
	dma := tl.ByResource(DMA)
	rc := tl.ByResource(RCArray)

	// Boundary sweep: both lists are sorted and non-overlapping within
	// their track (verify pins that), so a two-pointer walk suffices.
	di, ri := 0, 0
	cursor := 0
	for cursor < tl.Makespan {
		// Skip spans that ended at or before the cursor.
		for di < len(dma) && dma[di].End <= cursor {
			di++
		}
		for ri < len(rc) && rc[ri].End <= cursor {
			ri++
		}
		// The current segment runs until the nearest span boundary
		// ahead of the cursor on either track.
		next := tl.Makespan
		dmaBusy, rcBusy := false, false
		var dmaKind Kind
		if di < len(dma) {
			if dma[di].Start <= cursor {
				dmaBusy = true
				dmaKind = dma[di].Kind
				if dma[di].End < next {
					next = dma[di].End
				}
			} else if dma[di].Start < next {
				next = dma[di].Start
			}
		}
		if ri < len(rc) {
			if rc[ri].Start <= cursor {
				rcBusy = true
				if rc[ri].End < next {
					next = rc[ri].End
				}
			} else if rc[ri].Start < next {
				next = rc[ri].Start
			}
		}
		seg := next - cursor
		if seg <= 0 {
			break // defensive: malformed timeline, bail out of the sweep
		}
		switch {
		case rcBusy:
			path.Compute += seg
			if dmaBusy {
				overlap += seg
			}
		case dmaBusy:
			switch dmaKind {
			case KindContext, KindPrefetch:
				path.ExposedCtx += seg
			case KindLoad:
				path.ExposedLoad += seg
			case KindStore:
				path.ExposedStore += seg
			}
		default:
			path.Dead += seg
		}
		cursor = next
	}
	return overlap, path
}
