package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ChromeEvent is one Chrome trace-event ("Trace Event Format", the JSON
// consumed by chrome://tracing and Perfetto). Durations use the "X"
// (complete event) phase, instants the "i" phase; timestamps are in
// microseconds, so one RC cycle maps to one microsecond for viewing
// convenience.
type ChromeEvent struct {
	Name  string            `json:"name"`
	Cat   string            `json:"cat,omitempty"`
	Phase string            `json:"ph"`
	TS    int               `json:"ts"`
	Dur   int               `json:"dur,omitempty"`
	PID   int               `json:"pid"`
	TID   int               `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

// chromeDoc is the top-level JSON object.
type chromeDoc struct {
	TraceEvents []ChromeEvent `json:"traceEvents"`
}

// Track IDs: the RC array and the DMA channel of one timeline.
const (
	tidRCArray = 1
	tidDMA     = 2
)

// WriteChrome exports one or more timelines as a single Chrome trace.
// Each timeline becomes one process (pid 1, 2, ...) named by its label,
// with the RC array and the DMA channel as its two threads — loading a
// Basic/DS/CDS triple gives the paper's Figure 6 overlap comparison as
// three aligned process groups.
func WriteChrome(w io.Writer, tls ...*Timeline) error {
	var events []ChromeEvent
	for i, tl := range tls {
		if tl == nil {
			continue
		}
		pid := i + 1
		events = append(events,
			ChromeEvent{Name: "process_name", Phase: "M", PID: pid, TID: 0,
				Args: map[string]string{"name": tl.Label}},
			ChromeEvent{Name: "thread_name", Phase: "M", PID: pid, TID: tidRCArray,
				Args: map[string]string{"name": "RC array"}},
			ChromeEvent{Name: "thread_name", Phase: "M", PID: pid, TID: tidDMA,
				Args: map[string]string{"name": "DMA channel"}},
		)
		for _, s := range tl.ByResource(RCArray) {
			events = append(events, spanEvent(s, pid, tidRCArray))
		}
		for _, s := range tl.ByResource(DMA) {
			events = append(events, spanEvent(s, pid, tidDMA))
		}
		for _, m := range tl.Marks {
			events = append(events, ChromeEvent{
				Name: m.Name, Cat: m.Kind.String(), Phase: "i",
				TS: m.Cycle, PID: pid, TID: tidRCArray, Scope: "t",
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(chromeDoc{TraceEvents: events})
}

func spanEvent(s Span, pid, tid int) ChromeEvent {
	ev := ChromeEvent{
		Name: chromeName(s), Cat: s.Kind.String(), Phase: "X",
		TS: s.Start, Dur: s.Dur(), PID: pid, TID: tid,
		Args: map[string]string{
			"cluster": fmt.Sprint(s.Cluster),
			"block":   fmt.Sprint(s.Block),
			"set":     fmt.Sprint(s.Set),
		},
	}
	if s.Bytes > 0 {
		ev.Args["bytes"] = fmt.Sprint(s.Bytes)
	}
	if s.Words > 0 {
		ev.Args["words"] = fmt.Sprint(s.Words)
	}
	return ev
}

// chromeName renders a span's display name the way the legacy
// sim.WriteTrace exporter did, so existing trace consumers keep working.
func chromeName(s Span) string {
	switch s.Kind {
	case KindCompute:
		return fmt.Sprintf("cluster %d (block %d)", s.Cluster, s.Block)
	case KindContext:
		return fmt.Sprintf("ctx c%d b%d", s.Cluster, s.Block)
	case KindPrefetch:
		return fmt.Sprintf("prefetch ctx c%d b%d", s.Cluster, s.Block)
	case KindLoad:
		return fmt.Sprintf("load %s c%d b%d", s.Name, s.Cluster, s.Block)
	case KindStore:
		return fmt.Sprintf("store %s c%d b%d", s.Name, s.Cluster, s.Block)
	}
	return s.Name
}

// ValidateChrome parses a Chrome trace back and checks it is
// well-formed: valid JSON with a traceEvents array, every complete
// ("X") event with a non-negative timestamp and duration, and per
// (pid, tid) track the complete events in nondecreasing-timestamp,
// non-overlapping order. CI runs this over the exported MPEG trace so a
// malformed exporter cannot ship. It returns the number of complete
// events validated.
func ValidateChrome(r io.Reader) (int, error) {
	var doc chromeDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return 0, fmt.Errorf("trace: chrome JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return 0, fmt.Errorf("trace: chrome JSON: no traceEvents")
	}
	type track struct{ pid, tid int }
	byTrack := map[track][]ChromeEvent{}
	n := 0
	for i, ev := range doc.TraceEvents {
		switch ev.Phase {
		case "X":
			if ev.TS < 0 || ev.Dur < 0 {
				return 0, fmt.Errorf("trace: event %d (%q): negative interval ts=%d dur=%d", i, ev.Name, ev.TS, ev.Dur)
			}
			byTrack[track{ev.PID, ev.TID}] = append(byTrack[track{ev.PID, ev.TID}], ev)
			n++
		case "M", "i", "I":
			// metadata and instants carry no interval
		default:
			return 0, fmt.Errorf("trace: event %d (%q): unexpected phase %q", i, ev.Name, ev.Phase)
		}
	}
	tracks := make([]track, 0, len(byTrack))
	for t := range byTrack {
		tracks = append(tracks, t)
	}
	sort.Slice(tracks, func(i, j int) bool {
		return tracks[i].pid < tracks[j].pid ||
			(tracks[i].pid == tracks[j].pid && tracks[i].tid < tracks[j].tid)
	})
	for _, t := range tracks {
		evs := byTrack[t]
		for i := 1; i < len(evs); i++ {
			if evs[i].TS < evs[i-1].TS {
				return 0, fmt.Errorf("trace: track pid=%d tid=%d: timestamps not monotone: %q@%d after %q@%d",
					t.pid, t.tid, evs[i].Name, evs[i].TS, evs[i-1].Name, evs[i-1].TS)
			}
			if evs[i].TS < evs[i-1].TS+evs[i-1].Dur {
				return 0, fmt.Errorf("trace: track pid=%d tid=%d: %q@%d overlaps %q [%d,%d)",
					t.pid, t.tid, evs[i].Name, evs[i].TS, evs[i-1].Name, evs[i-1].TS, evs[i-1].TS+evs[i-1].Dur)
			}
		}
	}
	return n, nil
}
