package trace

import (
	"fmt"
	"io"
	"os"
)

// Export renders the timelines in the named format — the dispatcher
// behind every CLI's -trace-format flag:
//
//	chrome  — Chrome trace_event JSON (chrome://tracing, Perfetto)
//	svg     — self-contained SVG Gantt chart
//	summary — per-timeline text analytics
//	diff    — side-by-side analytics table (first timeline is baseline)
func Export(w io.Writer, format string, tls ...*Timeline) error {
	switch format {
	case "chrome":
		return WriteChrome(w, tls...)
	case "svg":
		return WriteSVG(w, tls...)
	case "summary":
		n := 0
		for _, tl := range tls {
			if tl != nil {
				WriteSummary(w, tl)
				n++
			}
		}
		if n == 0 {
			return fmt.Errorf("trace: no timelines to summarize")
		}
		return nil
	case "diff":
		WriteDiff(w, tls...)
		return nil
	}
	return fmt.Errorf("trace: unknown format %q (want chrome, svg, summary or diff)", format)
}

// ExportFile renders the timelines to path in the named format; "-"
// writes to stdout.
func ExportFile(path, format string, tls ...*Timeline) error {
	if path == "-" {
		return Export(os.Stdout, format, tls...)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Export(f, format, tls...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
