package trace

import "sync"

// RingEntry is one recorded trace in a Ring.
type RingEntry struct {
	// Label identifies the traced run (e.g. "cds/MPEG").
	Label string `json:"label"`
	// Seq is the entry's monotone admission number (1-based), so a
	// reader can tell how many traces were recorded before this one.
	Seq int64 `json:"seq"`
	// Analytics is the derived summary of the timeline.
	Analytics Analytics `json:"analytics"`
	// Chrome is the Chrome trace_event JSON of the timeline.
	Chrome []byte `json:"-"`
}

// RingStats snapshots the ring's counters.
type RingStats struct {
	// Recorded counts entries ever admitted; Evicted those displaced to
	// fit the bounds; Oversize those rejected outright because their
	// payload alone exceeds the byte budget.
	Recorded, Evicted, Oversize int64
	// Entries and Bytes gauge the current residency.
	Entries int
	Bytes   int
}

// Ring is a bounded in-memory buffer of recent trace entries for a
// serving process: bounded twice, by entry count and by a total byte
// budget over the entries' exported payloads, so a long-lived daemon
// can keep "the last few traces" forever without unbounded growth.
// Construct with NewRing; safe for concurrent use.
type Ring struct {
	mu      sync.Mutex
	entries []RingEntry
	maxN    int
	budget  int
	bytes   int
	stats   RingStats
}

// NewRing returns a ring holding at most maxEntries entries whose
// Chrome payloads total at most byteBudget bytes. Non-positive values
// default to 32 entries and 1 MiB.
func NewRing(maxEntries, byteBudget int) *Ring {
	if maxEntries <= 0 {
		maxEntries = 32
	}
	if byteBudget <= 0 {
		byteBudget = 1 << 20
	}
	return &Ring{maxN: maxEntries, budget: byteBudget}
}

// Add admits one entry, evicting the oldest entries as needed to
// respect both bounds. An entry whose payload alone exceeds the byte
// budget is dropped (counted in Oversize) — truncating a trace would
// serve corrupt JSON.
func (r *Ring) Add(e RingEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(e.Chrome) > r.budget {
		r.stats.Oversize++
		return
	}
	r.stats.Recorded++
	e.Seq = r.stats.Recorded
	for len(r.entries) >= r.maxN || r.bytes+len(e.Chrome) > r.budget {
		r.evictOldestLocked()
	}
	r.entries = append(r.entries, e)
	r.bytes += len(e.Chrome)
}

func (r *Ring) evictOldestLocked() {
	old := r.entries[0]
	// Clear the slot so the backing array does not pin the payload.
	r.entries[0] = RingEntry{}
	r.entries = r.entries[1:]
	r.bytes -= len(old.Chrome)
	r.stats.Evicted++
}

// Snapshot returns the resident entries, oldest first. The slice is a
// copy; the payload bytes are shared (the ring never mutates them).
func (r *Ring) Snapshot() []RingEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RingEntry, len(r.entries))
	copy(out, r.entries)
	return out
}

// Stats snapshots the counters and residency gauges.
func (r *Ring) Stats() RingStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.stats
	s.Entries = len(r.entries)
	s.Bytes = r.bytes
	return s
}
