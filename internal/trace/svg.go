package trace

import (
	"fmt"
	"io"
	"strings"
)

// The SVG Gantt exporter: a self-contained (no scripts, no external
// assets) chart of one or more timelines, two tracks each — RC array on
// top, DMA channel below — with spans colored by kind and FB set
// switches as dashed cycle markers. It answers the paper's Figure 6
// question at a glance: how much of the DMA track hides under the
// compute track.

// svg layout constants (pixels).
const (
	svgWidth      = 960
	svgMarginL    = 110
	svgMarginR    = 16
	svgTrackH     = 26
	svgTrackGap   = 8
	svgGroupGap   = 30
	svgHeaderH    = 34
	svgAxisH      = 28
	svgLegendH    = 24
	svgPlotW      = svgWidth - svgMarginL - svgMarginR
	svgMinSpanPx  = 0.5
	svgAxisTicks  = 8
	svgTitleSize  = 13
	svgLabelSize  = 11
	svgSpanStroke = "#ffffff"
)

// svgFill maps span kinds to fills.
func svgFill(k Kind) string {
	switch k {
	case KindCompute:
		return "#4878a8"
	case KindContext:
		return "#c2803d"
	case KindLoad:
		return "#5b9a68"
	case KindStore:
		return "#a85a5a"
	case KindPrefetch:
		return "#7a5fa8"
	}
	return "#888888"
}

// WriteSVG renders the timelines as one stacked SVG Gantt chart. All
// timelines share one time axis scaled to the longest makespan, so a
// Basic/DS/CDS triple reads as a direct visual diff.
func WriteSVG(w io.Writer, tls ...*Timeline) error {
	var kept []*Timeline
	maxSpan := 1
	for _, tl := range tls {
		if tl == nil {
			continue
		}
		kept = append(kept, tl)
		if tl.Makespan > maxSpan {
			maxSpan = tl.Makespan
		}
	}
	if len(kept) == 0 {
		return fmt.Errorf("trace: no timelines to render")
	}

	groupH := svgHeaderH + 2*svgTrackH + svgTrackGap
	height := svgLegendH + len(kept)*(groupH+svgGroupGap) + svgAxisH
	x := func(cycle int) float64 {
		return svgMarginL + float64(cycle)/float64(maxSpan)*svgPlotW
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="ui-monospace, SFMono-Regular, Menlo, monospace">`+"\n",
		svgWidth, height, svgWidth, height)
	b.WriteString(`<rect width="100%" height="100%" fill="#fcfcf9"/>` + "\n")

	// Legend.
	lx := svgMarginL
	for _, k := range []Kind{KindCompute, KindContext, KindPrefetch, KindLoad, KindStore} {
		fmt.Fprintf(&b, `<rect x="%d" y="6" width="12" height="12" fill="%s"/>`+"\n", lx, svgFill(k))
		fmt.Fprintf(&b, `<text x="%d" y="16" font-size="%d" fill="#333">%s</text>`+"\n", lx+16, svgLabelSize, k)
		lx += 18 + 8*len(k.String()) + 18
	}

	for gi, tl := range kept {
		top := svgLegendH + gi*(groupH+svgGroupGap)
		a := Analyze(tl)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="%d" fill="#111" font-weight="bold">%s</text>`+"\n",
			svgMarginL, top+14, svgTitleSize, svgEscape(tl.Label))
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="%d" fill="#555">%d cycles, RC %.0f%%, DMA %.0f%%, overlap %.0f%%</text>`+"\n",
			svgMarginL, top+28, svgLabelSize, tl.Makespan, a.RCUtilPct, a.DMAUtilPct, a.OverlapPct)

		tracks := []struct {
			name string
			res  Resource
		}{{"RC array", RCArray}, {"DMA", DMA}}
		for ti, tr := range tracks {
			y := top + svgHeaderH + ti*(svgTrackH+svgTrackGap)
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="%d" fill="#333" text-anchor="end">%s</text>`+"\n",
				svgMarginL-8, y+svgTrackH/2+4, svgLabelSize, tr.name)
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#eeeee8"/>`+"\n",
				svgMarginL, y, svgPlotW, svgTrackH)
			for _, s := range tl.ByResource(tr.res) {
				x0, x1 := x(s.Start), x(s.End)
				wpx := x1 - x0
				if wpx < svgMinSpanPx {
					wpx = svgMinSpanPx
				}
				fmt.Fprintf(&b, `<rect x="%.2f" y="%d" width="%.2f" height="%d" fill="%s" stroke="%s" stroke-width="0.3"><title>%s [%d,%d) %d cycles</title></rect>`+"\n",
					x0, y+2, wpx, svgTrackH-4, svgFill(s.Kind), svgSpanStroke,
					svgEscape(chromeName(s)), s.Start, s.End, s.Dur())
			}
		}
		// FB set switches: dashed markers across both tracks.
		for _, m := range tl.Marks {
			if m.Kind != MarkFBSwitch {
				continue
			}
			mx := x(m.Cycle)
			fmt.Fprintf(&b, `<line x1="%.2f" y1="%d" x2="%.2f" y2="%d" stroke="#6a4a8a" stroke-width="1" stroke-dasharray="3,2"><title>%s @%d</title></line>`+"\n",
				mx, top+svgHeaderH, mx, top+svgHeaderH+2*svgTrackH+svgTrackGap, svgEscape(m.Name), m.Cycle)
		}
	}

	// Shared time axis.
	ay := height - svgAxisH + 6
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#999"/>`+"\n",
		svgMarginL, ay, svgMarginL+svgPlotW, ay)
	for i := 0; i <= svgAxisTicks; i++ {
		cycle := maxSpan * i / svgAxisTicks
		tx := x(cycle)
		fmt.Fprintf(&b, `<line x1="%.2f" y1="%d" x2="%.2f" y2="%d" stroke="#999"/>`+"\n", tx, ay, tx, ay+4)
		fmt.Fprintf(&b, `<text x="%.2f" y="%d" font-size="%d" fill="#555" text-anchor="middle">%d</text>`+"\n",
			tx, ay+16, svgLabelSize, cycle)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="%d" fill="#555" text-anchor="end">cycles</text>`+"\n",
		svgMarginL+svgPlotW, ay-6, svgLabelSize)

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// svgEscape escapes the XML-significant characters of span names (datum
// names are caller-controlled in specs).
func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
