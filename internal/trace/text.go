package trace

import (
	"fmt"
	"io"
)

// WriteSummary renders one timeline's analytics as a compact text
// report: utilization, overlap efficiency and the critical-path
// decomposition, plus the per-cluster breakdown.
func WriteSummary(w io.Writer, tl *Timeline) {
	a := Analyze(tl)
	fmt.Fprintf(w, "%s: %d cycles\n", a.Label, a.Makespan)
	fmt.Fprintf(w, "  RC array   busy %7d cycles (%5.1f%%)\n", a.RCBusy, a.RCUtilPct)
	fmt.Fprintf(w, "  DMA        busy %7d cycles (%5.1f%%): ctx %d, loads %d, stores %d\n",
		a.DMABusy, a.DMAUtilPct, a.CtxCycles, a.LoadCycles, a.StoreCycles)
	fmt.Fprintf(w, "  overlap    %d of %d DMA cycles hidden under compute (%.1f%%)\n",
		a.OverlapCycles, a.DMABusy, a.OverlapPct)
	fmt.Fprintf(w, "  makespan   = compute %d + exposed ctx %d + exposed loads %d + exposed stores %d + dead %d\n",
		a.Path.Compute, a.Path.ExposedCtx, a.Path.ExposedLoad, a.Path.ExposedStore, a.Path.Dead)
	fmt.Fprintf(w, "  events     %d FB set switches, %d CM load bursts\n", a.FBSwitches, a.CMLoads)
	if len(a.Clusters) > 0 {
		fmt.Fprintf(w, "  %-9s %8s %8s %8s %8s %9s %9s %7s\n",
			"cluster", "compute", "ctx cyc", "load cyc", "stor cyc", "load B", "store B", "visits")
		for _, c := range a.Clusters {
			fmt.Fprintf(w, "  c%-8d %8d %8d %8d %8d %9d %9d %7d\n",
				c.Cluster, c.ComputeCycles, c.CtxCycles, c.LoadCycles, c.StoreCycles,
				c.LoadBytes, c.StoreBytes, c.Visits)
		}
	}
}

// WriteDiff renders several timelines' analytics side by side — the
// Basic vs DS vs CDS overlap comparison cmd/trace serves. The first
// timeline is the baseline for the relative makespan column.
func WriteDiff(w io.Writer, tls ...*Timeline) {
	var as []Analytics
	for _, tl := range tls {
		if tl != nil {
			as = append(as, Analyze(tl))
		}
	}
	if len(as) == 0 {
		fmt.Fprintln(w, "no timelines")
		return
	}
	base := float64(as[0].Makespan)
	fmt.Fprintf(w, "%-16s %10s %8s %7s %7s %9s %11s %11s %10s\n",
		"timeline", "makespan", "vs base", "RC%", "DMA%", "overlap%", "exposed ctx", "exposed mem", "dead")
	for _, a := range as {
		rel := "-"
		if base > 0 {
			rel = fmt.Sprintf("%+.1f%%", 100*(float64(a.Makespan)-base)/base)
		}
		fmt.Fprintf(w, "%-16s %10d %8s %6.1f%% %6.1f%% %8.1f%% %11d %11d %10d\n",
			a.Label, a.Makespan, rel, a.RCUtilPct, a.DMAUtilPct, a.OverlapPct,
			a.Path.ExposedCtx, a.Path.ExposedLoad+a.Path.ExposedStore, a.Path.Dead)
	}
}
