// Package trace is the schedule-execution tracing and timeline-analytics
// subsystem: typed, cycle-stamped spans recorded while the timing
// simulator walks a schedule, plus the derived analytics layer every
// performance argument in the paper rests on.
//
// The paper's whole case for the Complete Data Scheduler is a timeline
// case — data and context transfers for cluster c+1 hide under the
// computation of cluster c on the single DMA channel (Figure 6) — and
// scalar totals cannot show whether that overlap actually happened. A
// Timeline can: it records every DMA transfer (data vs. context), every
// kernel compute interval, every Frame Buffer set switch and every
// Context Memory load as a span or mark on its resource's track, and the
// analytics layer turns the track structure into per-resource
// utilization, computation/transfer overlap efficiency and a
// critical-path decomposition of the makespan.
//
// Recording is strictly observational: a nil *Recorder short-circuits
// every emit (the simulator's traced and untraced paths are one code
// path), so enabling tracing can never change a schedule or a timing
// result — pinned by golden byte-identity tests and a benchmark.
//
// Exporters: Chrome trace_event JSON (chrome://tracing, Perfetto), a
// self-contained SVG Gantt chart, and compact text summaries/diffs.
package trace

import (
	"fmt"
	"sort"
)

// Resource is one occupancy track of the machine model: spans on the
// same resource never overlap (the tiling invariant internal/verify
// checks).
type Resource int8

const (
	// DMA is the single shared DMA channel: data and context transfers
	// strictly serialize on it.
	DMA Resource = iota
	// RCArray is the reconfigurable-cell array: one cluster visit
	// computes at a time.
	RCArray

	numResources
)

func (r Resource) String() string {
	switch r {
	case DMA:
		return "DMA"
	case RCArray:
		return "RC array"
	}
	return fmt.Sprintf("resource(%d)", int8(r))
}

// Kind types a span's activity.
type Kind int8

const (
	// KindContext is a Context Memory load: context words moving over
	// the DMA channel before a visit may execute.
	KindContext Kind = iota
	// KindLoad is one datum's external-memory -> Frame Buffer transfer.
	KindLoad
	// KindStore is one datum's Frame Buffer -> external-memory drain.
	KindStore
	// KindCompute is a cluster visit executing on the RC array.
	KindCompute
	// KindPrefetch is a context load the streaming executor hoisted into
	// the previous visit's compute window (sim.RunStream with prefetch
	// enabled): the same CM traffic as KindContext, distinguished so
	// timelines and the verifier can see which bursts were hidden.
	KindPrefetch

	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindContext:
		return "context"
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindCompute:
		return "compute"
	case KindPrefetch:
		return "prefetch"
	}
	return fmt.Sprintf("kind(%d)", int8(k))
}

// Span is one cycle-stamped occupancy interval on a resource track.
type Span struct {
	Resource Resource
	Kind     Kind
	// Name identifies what moved or ran: a datum name for loads and
	// stores, "ctx" for context loads, the cluster label for compute.
	Name string
	// Start and End are RC-array cycle stamps, half-open [Start, End).
	Start, End int
	// Cluster, Block, Visit and Set give the schedule coordinates the
	// span belongs to (Visit indexes Schedule.Visits).
	Cluster, Block, Visit, Set int
	// Bytes is the data volume of a load/store span; Words the context
	// words of a context span; both 0 where not applicable.
	Bytes, Words int
}

// Dur returns the span's length in cycles.
func (s Span) Dur() int { return s.End - s.Start }

// MarkKind types an instantaneous event.
type MarkKind int8

const (
	// MarkFBSwitch is the RC array flipping to the other Frame Buffer
	// set at a visit boundary (the double-buffer swap).
	MarkFBSwitch MarkKind = iota
)

func (k MarkKind) String() string {
	if k == MarkFBSwitch {
		return "fb-switch"
	}
	return fmt.Sprintf("mark(%d)", int8(k))
}

// Mark is one instantaneous, cycle-stamped event.
type Mark struct {
	Kind  MarkKind
	Cycle int
	// Name labels the event (e.g. "set 0 -> 1").
	Name string
	// Visit is the visit whose start the mark decorates.
	Visit int
}

// Timeline is one schedule's recorded execution: every span and mark,
// plus the makespan they tile.
type Timeline struct {
	// Label identifies the run, e.g. "cds/MPEG".
	Label string
	// Makespan is the total execution time in cycles.
	Makespan int
	// Spans hold the occupancy intervals in emission (nondecreasing
	// start within each resource) order.
	Spans []Span
	// Marks hold the instantaneous events.
	Marks []Mark
}

// ByResource returns the timeline's spans on one resource, ordered by
// start cycle (stable for equal starts, which only zero-length spans can
// produce — and those are never emitted).
func (tl *Timeline) ByResource(r Resource) []Span {
	var out []Span
	for _, s := range tl.Spans {
		if s.Resource == r {
			out = append(out, s)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Busy returns the total busy cycles of one resource.
func (tl *Timeline) Busy(r Resource) int {
	n := 0
	for _, s := range tl.Spans {
		if s.Resource == r {
			n += s.Dur()
		}
	}
	return n
}

// BusyKind returns the total cycles of one span kind.
func (tl *Timeline) BusyKind(k Kind) int {
	n := 0
	for _, s := range tl.Spans {
		if s.Kind == k {
			n += s.Dur()
		}
	}
	return n
}

// Recorder accumulates spans during a simulation run. The nil *Recorder
// is the disabled state: every method short-circuits immediately, so the
// simulator's hot path carries no tracing branch cost beyond one nil
// check (pinned by BenchmarkSimRunNilRecorder).
type Recorder struct {
	spans []Span
	marks []Mark
}

// NewRecorder returns an enabled recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Span records one occupancy interval. Zero-length spans are dropped —
// they occupy nothing and would break the tiling invariant's strict
// ordering.
func (r *Recorder) Span(s Span) {
	if r == nil || s.End <= s.Start {
		return
	}
	r.spans = append(r.spans, s)
}

// Mark records one instantaneous event.
func (r *Recorder) Mark(m Mark) {
	if r == nil {
		return
	}
	r.marks = append(r.marks, m)
}

// Timeline finalizes the recording into a Timeline with the given label
// and makespan. The recorder keeps its state, so a caller may finalize
// once and keep appending only by starting a fresh recorder — finalize
// is the end of a recording by convention.
func (r *Recorder) Timeline(label string, makespan int) *Timeline {
	if r == nil {
		return nil
	}
	return &Timeline{
		Label:    label,
		Makespan: makespan,
		Spans:    r.spans,
		Marks:    r.marks,
	}
}

// Tiling is one resource's verified track: busy spans in strictly
// nondecreasing, non-overlapping order, plus the derived idle gaps. Busy
// and idle together tile [0, Makespan) exactly.
type Tiling struct {
	Resource Resource
	// Busy are the occupancy spans, sorted by start.
	Busy []Span
	// Idle are the gaps between them (and before the first / after the
	// last span), as [start, end) pairs.
	Idle [][2]int
	// BusyCycles and IdleCycles sum the two sides; they add up to the
	// timeline's makespan.
	BusyCycles, IdleCycles int
}

// Tile checks the per-resource tiling invariant and derives the idle
// gaps: within each resource, spans must not overlap, must lie inside
// [0, Makespan), and together with the gaps must account for every
// cycle of the makespan. It returns one Tiling per resource that has at
// least one span, keyed by Resource.
func Tile(tl *Timeline) (map[Resource]*Tiling, error) {
	if tl == nil {
		return nil, fmt.Errorf("trace: nil timeline")
	}
	out := map[Resource]*Tiling{}
	for r := Resource(0); r < numResources; r++ {
		spans := tl.ByResource(r)
		if len(spans) == 0 {
			continue
		}
		t := &Tiling{Resource: r, Busy: spans}
		cursor := 0
		for i, s := range spans {
			if s.Start < 0 || s.End > tl.Makespan {
				return nil, fmt.Errorf("trace: %s span %d (%s %q [%d,%d)) outside makespan %d",
					r, i, s.Kind, s.Name, s.Start, s.End, tl.Makespan)
			}
			if s.Start < cursor {
				return nil, fmt.Errorf("trace: %s span %d (%s %q [%d,%d)) overlaps previous span ending at %d",
					r, i, s.Kind, s.Name, s.Start, s.End, cursor)
			}
			if s.Start > cursor {
				t.Idle = append(t.Idle, [2]int{cursor, s.Start})
				t.IdleCycles += s.Start - cursor
			}
			t.BusyCycles += s.Dur()
			cursor = s.End
		}
		if cursor < tl.Makespan {
			t.Idle = append(t.Idle, [2]int{cursor, tl.Makespan})
			t.IdleCycles += tl.Makespan - cursor
		}
		if t.BusyCycles+t.IdleCycles != tl.Makespan {
			return nil, fmt.Errorf("trace: %s busy %d + idle %d != makespan %d",
				r, t.BusyCycles, t.IdleCycles, tl.Makespan)
		}
		out[r] = t
	}
	return out, nil
}
