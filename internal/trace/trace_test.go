package trace

import (
	"strings"
	"testing"
)

// handTimeline builds the canonical two-visit double-buffered shape:
//
//	DMA: ctx[0,4) load[4,10)           store[20,24) ctx[24,26) load[26,30)
//	RC:            compute[10,20)                   compute[30,40)
func handTimeline() *Timeline {
	r := NewRecorder()
	r.Span(Span{Resource: DMA, Kind: KindContext, Name: "ctx", Start: 0, End: 4, Cluster: 0, Words: 8})
	r.Span(Span{Resource: DMA, Kind: KindLoad, Name: "a", Start: 4, End: 10, Cluster: 0, Bytes: 24})
	r.Span(Span{Resource: RCArray, Kind: KindCompute, Name: "c0", Start: 10, End: 20, Cluster: 0})
	r.Span(Span{Resource: DMA, Kind: KindStore, Name: "r", Start: 20, End: 24, Cluster: 0, Bytes: 16})
	r.Span(Span{Resource: DMA, Kind: KindContext, Name: "ctx", Start: 24, End: 26, Cluster: 1, Words: 4})
	r.Span(Span{Resource: DMA, Kind: KindLoad, Name: "b", Start: 26, End: 30, Cluster: 1, Bytes: 16})
	r.Span(Span{Resource: RCArray, Kind: KindCompute, Name: "c1", Start: 30, End: 40, Cluster: 1})
	r.Mark(Mark{Kind: MarkFBSwitch, Cycle: 30, Name: "set 0 -> 1", Visit: 1})
	return r.Timeline("hand", 40)
}

// overlapTimeline has DMA traffic fully hidden under compute.
func overlapTimeline() *Timeline {
	r := NewRecorder()
	r.Span(Span{Resource: RCArray, Kind: KindCompute, Name: "c0", Start: 0, End: 100})
	r.Span(Span{Resource: DMA, Kind: KindLoad, Name: "a", Start: 10, End: 40, Bytes: 120, Cluster: 1})
	r.Span(Span{Resource: DMA, Kind: KindContext, Name: "ctx", Start: 40, End: 50, Words: 16, Cluster: 1})
	return r.Timeline("overlap", 100)
}

func TestNilRecorderShortCircuits(t *testing.T) {
	var r *Recorder
	r.Span(Span{Resource: DMA, Kind: KindLoad, Start: 0, End: 5})
	r.Mark(Mark{Kind: MarkFBSwitch})
	if tl := r.Timeline("nil", 10); tl != nil {
		t.Fatalf("nil recorder produced a timeline: %+v", tl)
	}
}

func TestRecorderDropsEmptySpans(t *testing.T) {
	r := NewRecorder()
	r.Span(Span{Resource: DMA, Kind: KindLoad, Start: 5, End: 5})
	r.Span(Span{Resource: DMA, Kind: KindLoad, Start: 7, End: 6})
	if tl := r.Timeline("empty", 10); len(tl.Spans) != 0 {
		t.Fatalf("zero/negative-length spans recorded: %+v", tl.Spans)
	}
}

func TestTileDerivesIdleGaps(t *testing.T) {
	tl := handTimeline()
	tiles, err := Tile(tl)
	if err != nil {
		t.Fatal(err)
	}
	dma, rc := tiles[DMA], tiles[RCArray]
	if dma == nil || rc == nil {
		t.Fatalf("missing tilings: %+v", tiles)
	}
	if dma.BusyCycles != 20 || dma.IdleCycles != 20 {
		t.Errorf("DMA busy/idle = %d/%d, want 20/20", dma.BusyCycles, dma.IdleCycles)
	}
	if rc.BusyCycles != 20 || rc.IdleCycles != 20 {
		t.Errorf("RC busy/idle = %d/%d, want 20/20", rc.BusyCycles, rc.IdleCycles)
	}
	// The idle gaps of the RC track: [0,10) and [20,30).
	if len(rc.Idle) != 2 || rc.Idle[0] != [2]int{0, 10} || rc.Idle[1] != [2]int{20, 30} {
		t.Errorf("RC idle gaps = %v", rc.Idle)
	}
}

func TestTileRejectsOverlapAndOutOfRange(t *testing.T) {
	r := NewRecorder()
	r.Span(Span{Resource: DMA, Kind: KindLoad, Start: 0, End: 10})
	r.Span(Span{Resource: DMA, Kind: KindLoad, Start: 5, End: 15})
	if _, err := Tile(r.Timeline("overlapping", 20)); err == nil {
		t.Error("overlapping spans accepted")
	}

	r = NewRecorder()
	r.Span(Span{Resource: DMA, Kind: KindLoad, Start: 0, End: 30})
	if _, err := Tile(r.Timeline("oversized", 20)); err == nil {
		t.Error("span beyond makespan accepted")
	}

	if _, err := Tile(nil); err == nil {
		t.Error("nil timeline accepted")
	}
}

func TestAnalyzeDecomposition(t *testing.T) {
	a := Analyze(handTimeline())
	if a.Makespan != 40 || a.DMABusy != 20 || a.RCBusy != 20 {
		t.Fatalf("busy totals wrong: %+v", a)
	}
	if a.DMAUtilPct != 50 || a.RCUtilPct != 50 {
		t.Errorf("utilization = %.1f/%.1f, want 50/50", a.DMAUtilPct, a.RCUtilPct)
	}
	// No transfer overlaps compute in the hand timeline.
	if a.OverlapCycles != 0 || a.OverlapPct != 0 {
		t.Errorf("overlap = %d (%.1f%%), want 0", a.OverlapCycles, a.OverlapPct)
	}
	// Makespan tiles: compute 20 + exposed ctx 6 + exposed loads 10 + exposed stores 4 + dead 0.
	p := a.Path
	if p.Compute != 20 || p.ExposedCtx != 6 || p.ExposedLoad != 10 || p.ExposedStore != 4 || p.Dead != 0 {
		t.Errorf("critical path = %+v", p)
	}
	if sum := p.Compute + p.ExposedCtx + p.ExposedLoad + p.ExposedStore + p.Dead; sum != a.Makespan {
		t.Errorf("decomposition sums to %d, makespan %d", sum, a.Makespan)
	}
	if a.FBSwitches != 1 || a.CMLoads != 2 {
		t.Errorf("events: switches=%d cm=%d, want 1/2", a.FBSwitches, a.CMLoads)
	}
	if len(a.Clusters) != 2 || a.Clusters[0].Cluster != 0 || a.Clusters[1].Cluster != 1 {
		t.Fatalf("clusters = %+v", a.Clusters)
	}
	if a.Clusters[0].LoadBytes != 24 || a.Clusters[0].StoreBytes != 16 || a.Clusters[0].CtxWords != 8 {
		t.Errorf("cluster 0 volumes = %+v", a.Clusters[0])
	}
}

func TestAnalyzeFullOverlap(t *testing.T) {
	a := Analyze(overlapTimeline())
	if a.OverlapCycles != 40 || a.OverlapPct != 100 {
		t.Errorf("overlap = %d (%.1f%%), want 40 (100%%)", a.OverlapCycles, a.OverlapPct)
	}
	if a.Path.ExposedCtx != 0 || a.Path.ExposedLoad != 0 || a.Path.ExposedStore != 0 {
		t.Errorf("exposed cycles under full overlap: %+v", a.Path)
	}
	if a.Path.Compute != 100 || a.Path.Dead != 0 {
		t.Errorf("path = %+v", a.Path)
	}
}

func TestAnalyzeDeadTime(t *testing.T) {
	r := NewRecorder()
	r.Span(Span{Resource: RCArray, Kind: KindCompute, Start: 0, End: 10})
	r.Span(Span{Resource: DMA, Kind: KindLoad, Start: 20, End: 30})
	a := Analyze(r.Timeline("gappy", 40))
	// [10,20) and [30,40) are dead: both resources idle.
	if a.Path.Dead != 20 {
		t.Errorf("dead = %d, want 20 (path %+v)", a.Path.Dead, a.Path)
	}
}

func TestChromeRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := WriteChrome(&b, handTimeline(), overlapTimeline()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`"traceEvents"`, "RC array", "DMA channel", "hand", "overlap", `"ph":"i"`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome export missing %q", want)
		}
	}
	n, err := ValidateChrome(strings.NewReader(out))
	if err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
	if n != 10 { // 7 spans in hand + 3 in overlap
		t.Errorf("validated %d complete events, want 10", n)
	}
}

func TestValidateChromeRejects(t *testing.T) {
	cases := map[string]string{
		"not json":        `{"traceEvents": [`,
		"empty":           `{"traceEvents": []}`,
		"negative":        `{"traceEvents": [{"ph":"X","ts":-1,"dur":5,"pid":1,"tid":1}]}`,
		"non-monotone":    `{"traceEvents": [{"ph":"X","ts":10,"dur":5,"pid":1,"tid":1},{"ph":"X","ts":3,"dur":2,"pid":1,"tid":1}]}`,
		"overlapping":     `{"traceEvents": [{"ph":"X","ts":0,"dur":10,"pid":1,"tid":1},{"ph":"X","ts":5,"dur":2,"pid":1,"tid":1}]}`,
		"unknown phase":   `{"traceEvents": [{"ph":"Z","ts":0,"pid":1,"tid":1}]}`,
		"plain non-array": `42`,
	}
	for name, doc := range cases {
		if _, err := ValidateChrome(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteSVG(t *testing.T) {
	var b strings.Builder
	if err := WriteSVG(&b, handTimeline(), overlapTimeline()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"<svg", "</svg>", "RC array", "DMA", "hand", "overlap", "stroke-dasharray"} {
		if !strings.Contains(out, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if err := WriteSVG(&strings.Builder{}); err == nil {
		t.Error("empty timeline list accepted")
	}
	// Hostile datum names must be escaped.
	r := NewRecorder()
	r.Span(Span{Resource: DMA, Kind: KindLoad, Name: `<x>&"y"`, Start: 0, End: 5})
	var hb strings.Builder
	if err := WriteSVG(&hb, r.Timeline(`<lbl>`, 10)); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(hb.String(), "<x>") || strings.Contains(hb.String(), "<lbl>") {
		t.Error("unescaped markup in SVG output")
	}
}

func TestWriteSummaryAndDiff(t *testing.T) {
	var b strings.Builder
	WriteSummary(&b, handTimeline())
	out := b.String()
	for _, want := range []string{"hand: 40 cycles", "RC array", "overlap", "makespan", "cluster"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}

	b.Reset()
	WriteDiff(&b, handTimeline(), overlapTimeline())
	out = b.String()
	for _, want := range []string{"timeline", "hand", "overlap", "+150.0%"} {
		if !strings.Contains(out, want) {
			t.Errorf("diff missing %q:\n%s", want, out)
		}
	}

	b.Reset()
	WriteDiff(&b)
	if !strings.Contains(b.String(), "no timelines") {
		t.Error("empty diff not reported")
	}
}

func TestRingBounds(t *testing.T) {
	r := NewRing(3, 100)
	pay := func(n int) []byte { return make([]byte, n) }
	for i := 0; i < 5; i++ {
		r.Add(RingEntry{Label: "t", Chrome: pay(10)})
	}
	s := r.Stats()
	if s.Entries != 3 || s.Recorded != 5 || s.Evicted != 2 {
		t.Fatalf("entry bound: %+v", s)
	}
	snap := r.Snapshot()
	if len(snap) != 3 || snap[0].Seq != 3 || snap[2].Seq != 5 {
		t.Fatalf("snapshot = %+v", snap)
	}

	// Byte budget evicts even below the entry bound.
	r = NewRing(100, 100)
	r.Add(RingEntry{Chrome: pay(60)})
	r.Add(RingEntry{Chrome: pay(60)})
	s = r.Stats()
	if s.Entries != 1 || s.Bytes != 60 || s.Evicted != 1 {
		t.Fatalf("byte budget: %+v", s)
	}

	// Oversize payloads are rejected, not truncated.
	r.Add(RingEntry{Chrome: pay(1000)})
	s = r.Stats()
	if s.Oversize != 1 || s.Entries != 1 {
		t.Fatalf("oversize: %+v", s)
	}
}

func TestRingNeverExceedsBudget(t *testing.T) {
	r := NewRing(64, 256)
	for i := 0; i < 200; i++ {
		r.Add(RingEntry{Chrome: make([]byte, 1+i%100)})
		if s := r.Stats(); s.Bytes > 256 {
			t.Fatalf("budget exceeded at add %d: %+v", i, s)
		}
	}
}

func TestStringers(t *testing.T) {
	if DMA.String() != "DMA" || RCArray.String() != "RC array" {
		t.Error("resource names")
	}
	if KindContext.String() != "context" || KindCompute.String() != "compute" {
		t.Error("kind names")
	}
	if MarkFBSwitch.String() != "fb-switch" {
		t.Error("mark name")
	}
	if Resource(9).String() == "" || Kind(9).String() == "" || MarkKind(9).String() == "" {
		t.Error("fallback names")
	}
}
