package verify

// The fairness invariant family: post-hoc audit of a multi-tenant plan
// (internal/tenant) — K applications time-sharing one array under
// spatial FB/CM quotas and weighted-fair cluster interleaving. The
// checks are algorithm-independent: they consume only the per-tenant
// schedules, the tenant parameters and the emitted slice order, and
// re-derive every claim from scratch, so ANY interleaver output can be
// audited — not just the one internal/tenant's WFQ happens to produce.
//
// Invariants (all reported under the "fairness" family):
//
//   - quota — per-tenant quotas are positive and SUM within the base
//     machine (the spatial-partition precondition), each tenant's
//     schedule was computed against a machine no larger than its quota
//     with the base's unchanged DMA cost model, and each schedule
//     passes the full solo invariant families under that view;
//   - boundary — the emitted order covers every tenant's visits exactly
//     once, in order, and every preemption point (slice start) lands on
//     a cluster boundary of its lane — no cluster run is ever split;
//   - priority — each emitted slice belongs to the highest priority
//     band that had an eligible (arrived, backlogged) tenant, and no
//     slice is served before its tenant's arrival cycle;
//   - lag — within a band, no backlogged tenant's ideal weighted share
//     ever exceeds its delivered service by more than K * the largest
//     emitted slice cost (bounded starvation at cluster granularity);
//   - execution — the stitched timeline simulates (sim.RunTenants),
//     wall clock dominates both total compute and serialized DMA busy
//     time, and no tenant finishes before its arrival-shifted solo
//     lower bound (sharing one array never makes anyone faster).

import (
	"cds/internal/arch"
	"cds/internal/core"
	"cds/internal/sim"
)

// TenantLane is one tenant's row of a fairness audit: the parameters it
// was admitted under plus the schedule the quota view produced. The
// struct is self-contained so callers above the verifier (the tenant
// layer, diffuzz, serving code) can hand plans down without this
// package importing them.
type TenantLane struct {
	ID       string
	Weight   int
	Priority int
	Arrive   int
	FBQuota  int
	CMQuota  int
	Schedule *core.Schedule
}

// Fairness audits a stitched multi-tenant plan: lanes are the admitted
// tenants (weights already normalized to >= 1), order is the global
// slice emission the plan executes. A nil error means every fairness
// invariant holds.
func Fairness(base arch.Params, lanes []TenantLane, order []sim.TenantSlice) error {
	if err := base.Validate(); err != nil {
		return violated("fairness", "base machine: %v", err)
	}
	if len(lanes) == 0 {
		return violated("fairness", "no tenant lanes")
	}
	if err := checkQuotas(base, lanes); err != nil {
		return err
	}
	if err := checkBoundaries(lanes, order); err != nil {
		return err
	}
	if err := checkPriorityAndLag(lanes, order); err != nil {
		return err
	}
	return checkTenantExecution(lanes, order)
}

// checkQuotas asserts the spatial-partition precondition and audits each
// lane's schedule with the full solo invariant families under its view.
func checkQuotas(base arch.Params, lanes []TenantLane) error {
	sumFB, sumCM := 0, 0
	for _, l := range lanes {
		if l.Weight < 1 {
			return violated("fairness", "tenant %q: weight %d < 1", l.ID, l.Weight)
		}
		if l.Arrive < 0 {
			return violated("fairness", "tenant %q: negative arrival %d", l.ID, l.Arrive)
		}
		if l.FBQuota <= 0 || l.CMQuota <= 0 {
			return violated("fairness", "tenant %q: non-positive quota (FB %d, CM %d)", l.ID, l.FBQuota, l.CMQuota)
		}
		sumFB += l.FBQuota
		sumCM += l.CMQuota
		if l.Schedule == nil {
			return violated("fairness", "tenant %q: nil schedule", l.ID)
		}
		a := l.Schedule.Arch
		if a.FBSetBytes > l.FBQuota {
			return violated("fairness", "tenant %q: schedule uses a %d-byte FB set, quota is %d (quota overrun)",
				l.ID, a.FBSetBytes, l.FBQuota)
		}
		if a.CMWords > l.CMQuota {
			return violated("fairness", "tenant %q: schedule uses %d CM words, quota is %d (quota overrun)",
				l.ID, a.CMWords, l.CMQuota)
		}
		// The view may only narrow FB/CM: a different DMA cost model
		// would make the schedule's cycle prices lies on the real machine.
		if a.BusBytes != base.BusBytes || a.DMASetupCycles != base.DMASetupCycles ||
			a.CtxWordBytes != base.CtxWordBytes || a.FBSets != base.FBSets {
			return violated("fairness", "tenant %q: quota view changed the DMA cost model (bus %d/%d, setup %d/%d)",
				l.ID, a.BusBytes, base.BusBytes, a.DMASetupCycles, base.DMASetupCycles)
		}
		if err := Schedule(l.Schedule); err != nil {
			return violated("fairness", "tenant %q: schedule fails solo verification under its quota view: %v", l.ID, err)
		}
	}
	if sumFB > base.FBSetBytes {
		return violated("fairness", "FB quotas sum to %d bytes, machine set holds %d (quota overrun)", sumFB, base.FBSetBytes)
	}
	if sumCM > base.CMWords {
		return violated("fairness", "CM quotas sum to %d words, machine holds %d (quota overrun)", sumCM, base.CMWords)
	}
	return nil
}

// checkBoundaries asserts the order is a boundary-respecting cover:
// every lane's visits exactly once, in order, every slice starting at a
// cluster boundary of its lane.
func checkBoundaries(lanes []TenantLane, order []sim.TenantSlice) error {
	next := make([]int, len(lanes))
	for si, sl := range order {
		if sl.Lane < 0 || sl.Lane >= len(lanes) {
			return violated("fairness", "slice %d: lane %d out of range", si, sl.Lane)
		}
		visits := lanes[sl.Lane].Schedule.Visits
		if sl.N < 1 {
			return violated("fairness", "slice %d: empty slice on tenant %q", si, lanes[sl.Lane].ID)
		}
		if sl.First != next[sl.Lane] {
			return violated("fairness", "slice %d: tenant %q resumes at visit %d, expected %d (out-of-order emission)",
				si, lanes[sl.Lane].ID, sl.First, next[sl.Lane])
		}
		if sl.First+sl.N > len(visits) {
			return violated("fairness", "slice %d: tenant %q overruns its %d visits", si, lanes[sl.Lane].ID, len(visits))
		}
		if sl.First > 0 && visits[sl.First-1].Cluster == visits[sl.First].Cluster {
			return violated("fairness", "slice %d: tenant %q preempted inside cluster %d (visit %d is not a cluster boundary)",
				si, lanes[sl.Lane].ID, visits[sl.First].Cluster, sl.First)
		}
		next[sl.Lane] += sl.N
	}
	for i, n := range next {
		if n != len(lanes[i].Schedule.Visits) {
			return violated("fairness", "tenant %q: order covers %d of %d visits (starved outright)",
				lanes[i].ID, n, len(lanes[i].Schedule.Visits))
		}
	}
	return nil
}

// sliceCost prices one emitted slice in busy cycles under its lane's
// schedule arch — the same currency the interleaver charges.
func sliceCost(l *TenantLane, sl sim.TenantSlice) int {
	cost := 0
	for vi := sl.First; vi < sl.First+sl.N; vi++ {
		cost += sim.VisitCost(l.Schedule.Arch, &l.Schedule.Visits[vi])
	}
	return cost
}

// checkPriorityAndLag replays the emission order on a plan-time clock
// and asserts the scheduling-policy invariants: arrivals respected,
// strict priority between bands, bounded weighted-share lag within a
// band. The replay is fluid-GPS accounting: while a slice runs, every
// backlogged band-mate accrues ideal service in proportion to its
// weight; a correct weighted-fair interleaver keeps every lane's
// (ideal - delivered) below K * max emitted slice cost.
func checkPriorityAndLag(lanes []TenantLane, order []sim.TenantSlice) error {
	n := len(lanes)
	remaining := make([]int, n)
	for i, l := range lanes {
		remaining[i] = len(l.Schedule.Visits)
	}
	costs := make([]int, len(order))
	maxCost := 0
	for si, sl := range order {
		costs[si] = sliceCost(&lanes[sl.Lane], sl)
		if costs[si] > maxCost {
			maxCost = costs[si]
		}
	}
	bound := float64(maxCost * n)

	ideal := make([]float64, n)
	service := make([]float64, n)
	clock := 0
	for si, sl := range order {
		// Idle jump: with nobody eligible the machine waits for the
		// earliest arrival, exactly like the interleaver's clock.
		for {
			any := false
			for i := 0; i < n; i++ {
				if remaining[i] > 0 && lanes[i].Arrive <= clock {
					any = true
					break
				}
			}
			if any {
				break
			}
			nextArrive := -1
			for i := 0; i < n; i++ {
				if remaining[i] > 0 && (nextArrive < 0 || lanes[i].Arrive < nextArrive) {
					nextArrive = lanes[i].Arrive
				}
			}
			clock = nextArrive
		}
		if lanes[sl.Lane].Arrive > clock {
			return violated("fairness", "slice %d: tenant %q served at plan cycle %d before its arrival %d",
				si, lanes[sl.Lane].ID, clock, lanes[sl.Lane].Arrive)
		}
		band := -1
		for i := 0; i < n; i++ {
			if remaining[i] > 0 && lanes[i].Arrive <= clock && lanes[i].Priority > band {
				band = lanes[i].Priority
			}
		}
		if lanes[sl.Lane].Priority < band {
			return violated("fairness", "slice %d: tenant %q (band %d) served while band %d had eligible work (priority inversion)",
				si, lanes[sl.Lane].ID, lanes[sl.Lane].Priority, band)
		}
		cost := float64(costs[si])
		wsum := 0
		for i := 0; i < n; i++ {
			if remaining[i] > 0 && lanes[i].Arrive <= clock && lanes[i].Priority == band {
				wsum += lanes[i].Weight
			}
		}
		for i := 0; i < n; i++ {
			if remaining[i] > 0 && lanes[i].Arrive <= clock && lanes[i].Priority == band {
				ideal[i] += cost * float64(lanes[i].Weight) / float64(wsum)
			}
		}
		service[sl.Lane] += cost
		for i := 0; i < n; i++ {
			if remaining[i] > 0 && lanes[i].Arrive <= clock && lanes[i].Priority == band {
				if lag := ideal[i] - service[i]; lag > bound {
					return violated("fairness", "slice %d: tenant %q lags its ideal share by %.0f cycles, bound is %.0f (starvation)",
						si, lanes[i].ID, lag, bound)
				}
			}
		}
		remaining[sl.Lane] -= sl.N
		clock += costs[si]
	}
	return nil
}

// checkTenantExecution runs the stitched order on the shared machine
// and asserts the timing dominance facts: the global walk simulates,
// wall clock covers both shared resources' busy time, and every lane
// finishes no earlier than its arrival-shifted solo lower bound.
func checkTenantExecution(lanes []TenantLane, order []sim.TenantSlice) error {
	scheds := make([]*core.Schedule, len(lanes))
	arrive := make([]int, len(lanes))
	for i, l := range lanes {
		scheds[i] = l.Schedule
		arrive[i] = l.Arrive
	}
	res, err := sim.RunTenants(scheds, arrive, order)
	if err != nil {
		return violated("fairness", "stitched execution: %v", err)
	}
	totalCompute := 0
	for _, c := range res.LaneCompute {
		totalCompute += c
	}
	if res.TotalCycles < totalCompute {
		return violated("fairness", "makespan %d below total compute %d (RC array oversubscribed)",
			res.TotalCycles, totalCompute)
	}
	if dma := res.DataCycles + res.CtxCycles; res.TotalCycles < dma {
		return violated("fairness", "makespan %d below DMA busy time %d (channel oversubscribed)",
			res.TotalCycles, dma)
	}
	for i, l := range lanes {
		solo, err := sim.Run(l.Schedule)
		if err != nil {
			return violated("fairness", "tenant %q: solo simulation: %v", l.ID, err)
		}
		if len(solo.VisitEnd) == 0 {
			continue
		}
		lower := l.Arrive + solo.VisitEnd[len(solo.VisitEnd)-1]
		if res.LaneEnd[i] < lower {
			return violated("fairness", "tenant %q finishes at cycle %d, below its solo lower bound %d (shared timeline cannot beat solo)",
				l.ID, res.LaneEnd[i], lower)
		}
	}
	return nil
}
