package verify_test

// The fairness family is audited from OUTSIDE the package, building real
// plans with the tenant layer and then perturbing the lanes/order the way
// a buggy interleaver would: the verifier must accept the genuine plan
// and name the right invariant for each perturbation.

import (
	"context"
	"errors"
	"strings"
	"testing"

	"cds/internal/arch"
	"cds/internal/scherr"
	"cds/internal/sim"
	"cds/internal/tenant"
	"cds/internal/verify"
	"cds/internal/workloads"
)

// fairPlan builds the canonical two-tenant plan used by every subtest.
func fairPlan(t *testing.T, weights [2]int) (arch.Params, *tenant.Plan) {
	t.Helper()
	base := arch.M1()
	tenants := []tenant.Tenant{
		{ID: "video", Weight: weights[0], Quota: tenant.Quota{FBBytes: arch.KiB, CMWords: 512}, Part: workloads.E1().Part},
		{ID: "radar", Weight: weights[1], Quota: tenant.Quota{FBBytes: arch.KiB, CMWords: 512}, Part: workloads.ATRFI(0).Part},
	}
	p, err := tenant.Schedule(context.Background(), base, tenants)
	if err != nil {
		t.Fatalf("tenant.Schedule: %v", err)
	}
	return base, p
}

func wantViolation(t *testing.T, err error, substr string) {
	t.Helper()
	if err == nil {
		t.Fatalf("fairness accepted a plan that violates %q", substr)
	}
	if !errors.Is(err, scherr.ErrVerify) {
		t.Errorf("violation does not match scherr.ErrVerify: %v", err)
	}
	if !strings.Contains(err.Error(), "fairness") || !strings.Contains(err.Error(), substr) {
		t.Errorf("error = %v, want fairness violation mentioning %q", err, substr)
	}
}

func TestFairnessAcceptsGenuinePlan(t *testing.T) {
	base, p := fairPlan(t, [2]int{2, 1})
	if err := verify.Fairness(base, p.VerifyLanes(), p.Order); err != nil {
		t.Fatalf("Fairness rejected a genuine plan: %v", err)
	}
}

func TestFairnessQuotaOverrun(t *testing.T) {
	base, p := fairPlan(t, [2]int{1, 1})
	lanes := p.VerifyLanes()
	lanes[0].FBQuota = lanes[0].Schedule.Arch.FBSetBytes - 1
	wantViolation(t, verify.Fairness(base, lanes, p.Order), "quota overrun")

	lanes = p.VerifyLanes()
	lanes[0].FBQuota = base.FBSetBytes
	wantViolation(t, verify.Fairness(base, lanes, p.Order), "quota overrun")
}

func TestFairnessBoundaryPreemption(t *testing.T) {
	// A single-cluster application is one long cluster run: its visits
	// form ONE slice, so any split lands mid-cluster.
	mono, err := workloads.Synthetic(workloads.SyntheticConfig{
		Clusters: 1, KernelsPerCluster: 2, Iterations: 8,
		DataBytes: 64, CtxWords: 120, ComputeCycles: 100,
	}, 1)
	if err != nil {
		t.Fatalf("Synthetic: %v", err)
	}
	base := arch.M1()
	tenants := []tenant.Tenant{
		{ID: "mono", Weight: 1, Quota: tenant.Quota{FBBytes: arch.KiB, CMWords: 512}, Part: mono},
		{ID: "radar", Weight: 1, Quota: tenant.Quota{FBBytes: arch.KiB, CMWords: 512}, Part: workloads.ATRFI(0).Part},
	}
	p, err := tenant.Schedule(context.Background(), base, tenants)
	if err != nil {
		t.Fatalf("tenant.Schedule: %v", err)
	}
	var si int
	for si = range p.Order {
		if p.Order[si].N >= 2 {
			break
		}
	}
	first := p.Order[si]
	if first.N < 2 {
		t.Fatalf("no slice with >= 2 visits to split in %v", p.Order)
	}
	order := append(append([]sim.TenantSlice{}, p.Order[:si]...),
		sim.TenantSlice{Lane: first.Lane, First: first.First, N: 1},
		sim.TenantSlice{Lane: first.Lane, First: first.First + 1, N: first.N - 1})
	order = append(order, p.Order[si+1:]...)
	wantViolation(t, verify.Fairness(base, p.VerifyLanes(), order), "preempted inside cluster")
}

func TestFairnessStarvedOutright(t *testing.T) {
	base, p := fairPlan(t, [2]int{1, 1})
	wantViolation(t, verify.Fairness(base, p.VerifyLanes(), p.Order[:len(p.Order)-1]), "starved")
}

func TestFairnessOutOfOrderEmission(t *testing.T) {
	base, p := fairPlan(t, [2]int{1, 1})
	// Emit one lane's slices in reversed order.
	var lane0 []sim.TenantSlice
	var rest []sim.TenantSlice
	for _, sl := range p.Order {
		if sl.Lane == 0 {
			lane0 = append(lane0, sl)
		} else {
			rest = append(rest, sl)
		}
	}
	if len(lane0) < 2 {
		t.Fatalf("lane 0 emitted %d slices, need >= 2", len(lane0))
	}
	var order []sim.TenantSlice
	for i := len(lane0) - 1; i >= 0; i-- {
		order = append(order, lane0[i])
	}
	order = append(order, rest...)
	wantViolation(t, verify.Fairness(base, p.VerifyLanes(), order), "out-of-order")
}

func TestFairnessArrivalViolated(t *testing.T) {
	base, p := fairPlan(t, [2]int{1, 1})
	lanes := p.VerifyLanes()
	// Claim the first-served lane arrives far in the future while the
	// other lane is present from cycle 0: serving it first is a lie.
	lanes[p.Order[0].Lane].Arrive = 1 << 30
	wantViolation(t, verify.Fairness(base, lanes, p.Order), "before its arrival")
}

func TestFairnessPriorityInversion(t *testing.T) {
	base, p := fairPlan(t, [2]int{1, 1})
	lanes := p.VerifyLanes()
	// Promote the lane that is NOT served first: the recorded order now
	// serves a band-0 slice while band 1 had eligible work.
	lanes[1-p.Order[0].Lane].Priority = 1
	wantViolation(t, verify.Fairness(base, lanes, p.Order), "priority inversion")
}

func TestFairnessStarvationLagBound(t *testing.T) {
	base, p := fairPlan(t, [2]int{1, 9})
	// A run-to-completion order (all of lane 0, then all of lane 1)
	// starves the weight-9 lane far past the K * max-slice-cost bound.
	var order []sim.TenantSlice
	for _, lane := range []int{0, 1} {
		for _, sl := range p.Order {
			if sl.Lane == lane {
				order = append(order, sl)
			}
		}
	}
	wantViolation(t, verify.Fairness(base, p.VerifyLanes(), order), "starvation")
}

func TestFairnessChangedCostModel(t *testing.T) {
	base, p := fairPlan(t, [2]int{1, 1})
	lanes := p.VerifyLanes()
	sched := *lanes[0].Schedule
	sched.Arch.BusBytes *= 2
	lanes[0].Schedule = &sched
	wantViolation(t, verify.Fairness(base, lanes, p.Order), "cost model")
}
