package verify

import (
	"errors"
	"testing"

	"cds/internal/core"
	"cds/internal/scherr"
	"cds/internal/workloads"
)

// FuzzVerifySchedule is the scheduling-pipeline fuzz oracle: for any
// generatable workload and architecture, every schedule the schedulers
// accept must pass the full invariant audit, and nothing may panic.
// Schedule-time rejections are fine only when they are typed taxonomy
// errors (infeasible or capacity).
func FuzzVerifySchedule(f *testing.F) {
	f.Add(uint8(6), uint8(2), uint8(12), uint16(128), uint8(50), uint8(50), int64(1), uint32(0), uint8(2))
	f.Add(uint8(1), uint8(1), uint8(1), uint16(8), uint8(0), uint8(0), int64(7), uint32(512), uint8(0))
	f.Add(uint8(8), uint8(3), uint8(24), uint16(300), uint8(100), uint8(100), int64(42), uint32(2048), uint8(1))
	f.Add(uint8(4), uint8(2), uint8(9), uint16(64), uint8(25), uint8(75), int64(-3), uint32(200), uint8(3))

	f.Fuzz(func(t *testing.T, clusters, kpc, iters uint8, dataBytes uint16,
		sharedData, sharedResult uint8, seed int64, fbBytes uint32, which uint8) {
		cfg := workloads.SyntheticConfig{
			Clusters:          1 + int(clusters)%12,
			KernelsPerCluster: 1 + int(kpc)%4,
			Iterations:        1 + int(iters)%32,
			DataBytes:         8 + int(dataBytes)%1024,
			SharedDataFrac:    float64(sharedData%101) / 100,
			SharedResultFrac:  float64(sharedResult%101) / 100,
			CtxWords:          32 + int(dataBytes)%256,
			ComputeCycles:     16 + int(iters)%256,
		}
		part, err := workloads.Synthetic(cfg, seed)
		if err != nil {
			t.Skip() // generator rejected the config: nothing to audit
		}
		pa := workloads.SyntheticArch(cfg)
		if fbBytes != 0 {
			// Fuzz the Frame Buffer too: small sets probe infeasibility
			// paths, large ones probe retention-heavy schedules.
			pa.FBSetBytes = 32 + int(fbBytes)%(1<<16)
		}
		scheds := []core.Scheduler{
			core.Basic{},
			core.DataScheduler{},
			core.CompleteDataScheduler{},
			core.CompleteDataScheduler{RF: core.RFSweep},
		}
		sched := scheds[int(which)%len(scheds)]
		s, err := sched.Schedule(pa, part)
		if err != nil {
			if !errors.Is(err, scherr.ErrInfeasible) && !errors.Is(err, scherr.ErrCapacity) {
				t.Fatalf("%s rejected a generated workload with an untyped error: %v", sched.Name(), err)
			}
			return
		}
		if err := Schedule(s); err != nil {
			t.Fatalf("%s produced a schedule that fails verification: %v", sched.Name(), err)
		}
	})
}
