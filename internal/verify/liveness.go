package verify

import (
	"fmt"
	"strings"

	"cds/internal/core"
)

// checkLiveness replays the allocation events against the execution
// order (the same replay discipline the functional machine uses, minus
// the bytes) and asserts the data-flow invariants:
//
//   - every datum a kernel reads is PLACED in some Frame Buffer set at
//     that step (not released earlier — a dead read) and WRITTEN (loaded
//     from external memory or produced by an earlier kernel — not a read
//     of garbage);
//   - every external load brings in either a true external input or a
//     result some earlier visit stored (the external memory never serves
//     a datum nothing wrote);
//   - every store drains a placed, written instance.
func checkLiveness(s *core.Schedule, rep *core.AllocationReport) error {
	a := s.P.App

	type visitKey struct{ block, cluster int }
	eventsByVisit := map[visitKey][]core.AllocEvent{}
	for _, ev := range rep.Events {
		k := visitKey{ev.Block, ev.Cluster}
		eventsByVisit[k] = append(eventsByVisit[k], ev)
	}

	type placeKey struct {
		set  int
		inst string
	}
	placed := map[placeKey]bool{}  // instance currently resident
	written := map[placeKey]bool{} // resident AND carrying real bytes
	findPlacement := func(set int, inst string) (placeKey, bool) {
		if placed[placeKey{set, inst}] {
			return placeKey{set, inst}, true
		}
		for k := range placed {
			if k.inst == inst {
				return k, true
			}
		}
		return placeKey{}, false
	}

	type extKey struct {
		datum   string
		absIter int
	}
	extWritten := map[extKey]bool{} // results stored to external memory

	for vi, v := range s.Visits {
		evs := eventsByVisit[visitKey{v.Block, v.Cluster}]
		loadsDatum := map[string]bool{}
		for _, m := range v.Loads {
			loadsDatum[m.Datum] = true
		}

		applyEvent := func(ev core.AllocEvent) error {
			k := placeKey{ev.Set, ev.Object}
			switch ev.Op {
			case core.OpAlloc:
				placed[k] = true
				if !loadsDatum[ev.Datum] {
					return nil
				}
				// The placement is filled from external memory: the
				// datum must exist out there.
				slot, err := instanceSlot(ev.Object)
				if err != nil {
					return err
				}
				abs := v.Block*s.RF + slot
				if !a.IsExternalInput(ev.Datum) && !extWritten[extKey{ev.Datum, abs}] {
					return violated("liveness", "visit %d loads %s@%d which was never stored to external memory",
						vi, ev.Datum, abs)
				}
				written[k] = true
			case core.OpRelease:
				delete(placed, k)
				delete(written, k)
			}
			return nil
		}

		type stepKey struct{ kernel, slot int }
		stepEvents := map[stepKey][]core.AllocEvent{}
		var post []core.AllocEvent
		for _, ev := range evs {
			switch {
			case ev.Kernel >= 0:
				k := stepKey{ev.Kernel, ev.Iter}
				stepEvents[k] = append(stepEvents[k], ev)
			case ev.Iter == -1:
				if err := applyEvent(ev); err != nil {
					return err
				}
			default:
				post = append(post, ev)
			}
		}

		for _, ki := range s.P.Clusters[v.Cluster].Kernels {
			k := a.Kernels[ki]
			for slot := 0; slot < v.Iters; slot++ {
				var stepReleases []core.AllocEvent
				for _, ev := range stepEvents[stepKey{ki, slot}] {
					if ev.Op == core.OpRelease {
						stepReleases = append(stepReleases, ev)
						continue
					}
					if err := applyEvent(ev); err != nil {
						return err
					}
				}
				for _, in := range k.Inputs {
					inst := instanceName(in, slot)
					pk, ok := findPlacement(v.Set, inst)
					if !ok {
						return violated("liveness", "visit %d: kernel %s reads %s which is dead (no live placement)",
							vi, k.Name, inst)
					}
					if !written[pk] {
						return violated("liveness", "visit %d: kernel %s reads %s which was never written",
							vi, k.Name, inst)
					}
				}
				for _, out := range k.Outputs {
					inst := instanceName(out, slot)
					pk, ok := findPlacement(v.Set, inst)
					if !ok {
						return violated("liveness", "visit %d: kernel %s writes %s with no live placement",
							vi, k.Name, inst)
					}
					written[pk] = true
				}
				for _, ev := range stepReleases {
					if err := applyEvent(ev); err != nil {
						return err
					}
				}
			}
		}

		for _, m := range v.Stores {
			for slot := 0; slot < v.Iters; slot++ {
				inst := instanceName(m.Datum, slot)
				pk, ok := findPlacement(v.Set, inst)
				if !ok {
					return violated("liveness", "visit %d stores %s which is dead (no live placement)", vi, inst)
				}
				if !written[pk] {
					return violated("liveness", "visit %d stores %s which was never written", vi, inst)
				}
				extWritten[extKey{m.Datum, v.Block*s.RF + slot}] = true
			}
		}

		for _, ev := range post {
			if err := applyEvent(ev); err != nil {
				return err
			}
		}
	}
	return nil
}

func instanceName(datum string, slot int) string {
	return fmt.Sprintf("%s#i%d", datum, slot)
}

// instanceSlot parses the iteration slot out of an instance name
// ("tile#i3" -> 3).
func instanceSlot(inst string) (int, error) {
	i := strings.LastIndex(inst, "#i")
	if i < 0 {
		return 0, violated("liveness", "malformed instance name %q", inst)
	}
	var slot int
	if _, err := fmt.Sscanf(inst[i+2:], "%d", &slot); err != nil {
		return 0, violated("liveness", "malformed instance name %q: %v", inst, err)
	}
	return slot, nil
}
