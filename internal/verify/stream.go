package verify

// The "prefetch" invariant family: post-hoc checks over a streamed
// execution (sim.RunStream). The streaming executor may hoist the next
// visit's context words into the current visit's compute window, and
// this family proves the hoisting never cheated:
//
//   - single-channel DMA serialization still holds (the recorded spans
//     tile each resource track without overlap);
//   - every visit's context and data loads complete before its compute
//     starts (contexts resident before execution), and never issue
//     before the visit's stream arrival (Ready);
//   - every prefetch span really was a hoist (it starts inside the
//     previous visit's compute window) and was legal: the previous
//     visit computes out of a different FB set, and the hoisted words
//     fit beside the previous visit's context working set in the CM;
//   - without prefetch, no transfer for visit v starts before visit
//     v-1's compute ends (the serialized online baseline), and no
//     prefetch spans exist at all;
//   - the trace's busy totals equal the simulator's reported cycles,
//     with hoisted context bursts counted as context traffic.
//
// Violations match scherr.ErrVerify like every other family.

import (
	"cds/internal/core"
	"cds/internal/sim"
	"cds/internal/trace"
)

// Stream simulates the schedule under the streaming model with the
// given options and audits the prefetch invariant family against the
// recorded timeline. A nil error means the streamed execution is sound.
func Stream(s *core.Schedule, o sim.StreamOpts) error {
	if s == nil {
		return violated("prefetch", "nil schedule")
	}
	res, tl, err := sim.TraceStream(s, "", o)
	if err != nil {
		return &Error{Invariant: "prefetch", Err: err}
	}
	return StreamTimeline(s, o, res, tl)
}

// StreamTimeline audits an already-recorded streamed execution. Callers
// that traced the run themselves (serving layers, the CLI) use it to
// avoid simulating twice.
func StreamTimeline(s *core.Schedule, o sim.StreamOpts, res *sim.Result, tl *trace.Timeline) error {
	if s == nil || res == nil || tl == nil {
		return violated("prefetch", "nil schedule, result or timeline")
	}
	if o.Visits != nil && len(o.Visits) != len(s.Visits) {
		return violated("prefetch", "stream opts carry %d visits, schedule has %d", len(o.Visits), len(s.Visits))
	}
	ready := func(vi int) int {
		if o.Visits == nil {
			return 0
		}
		return o.Visits[vi].Ready
	}
	groupWords := func(vi int) int {
		if o.Visits == nil {
			return 0
		}
		return o.Visits[vi].GroupWords
	}

	// DMA serialization and exact tiling of both resource tracks.
	if _, err := trace.Tile(tl); err != nil {
		return &Error{Invariant: "prefetch", Err: err}
	}

	if len(res.VisitStart) != len(s.Visits) || len(res.VisitEnd) != len(s.Visits) {
		return violated("prefetch", "result carries %d visit intervals, schedule has %d",
			len(res.VisitStart), len(s.Visits))
	}

	prefetchBusy := 0
	for _, sp := range tl.Spans {
		if sp.Resource != trace.DMA {
			continue
		}
		vi := sp.Visit
		if vi < 0 || vi >= len(s.Visits) {
			return violated("prefetch", "span %q [%d,%d) names visit %d of %d",
				sp.Name, sp.Start, sp.End, vi, len(s.Visits))
		}
		switch sp.Kind {
		case trace.KindStore:
			// Stores drain after their visit's compute; the tiling check
			// already constrains them.
			continue
		case trace.KindContext, trace.KindPrefetch, trace.KindLoad:
			if sp.End > res.VisitStart[vi] {
				return violated("prefetch", "visit %d: %s %q [%d,%d) not resident before compute start %d",
					vi, sp.Kind, sp.Name, sp.Start, sp.End, res.VisitStart[vi])
			}
			if sp.Start < ready(vi) {
				return violated("prefetch", "visit %d: %s %q issues at %d before stream arrival %d",
					vi, sp.Kind, sp.Name, sp.Start, ready(vi))
			}
			if !o.Prefetch && vi > 0 && sp.Start < res.VisitEnd[vi-1] {
				return violated("prefetch", "visit %d: %s %q issues at %d inside the previous compute window ending %d with prefetch disabled",
					vi, sp.Kind, sp.Name, sp.Start, res.VisitEnd[vi-1])
			}
		}
		if sp.Kind != trace.KindPrefetch {
			continue
		}
		prefetchBusy += sp.Dur()
		if !o.Prefetch {
			return violated("prefetch", "visit %d: prefetch span [%d,%d) recorded with prefetch disabled",
				vi, sp.Start, sp.End)
		}
		if vi == 0 {
			return violated("prefetch", "visit 0: prefetch span [%d,%d) has no predecessor to hide under",
				sp.Start, sp.End)
		}
		if sp.Start >= res.VisitEnd[vi-1] {
			return violated("prefetch", "visit %d: prefetch span starts at %d, after the previous compute window ends at %d",
				vi, sp.Start, res.VisitEnd[vi-1])
		}
		if s.Visits[vi].Set == s.Visits[vi-1].Set {
			return violated("prefetch", "visit %d: prefetch into FB set %d while visit %d computes out of it",
				vi, s.Visits[vi].Set, vi-1)
		}
		if s.Visits[vi].CtxWords+groupWords(vi-1) > s.Arch.CMWords {
			return violated("prefetch", "visit %d: prefetching %d context words would evict visit %d's %d-word working set (CM holds %d)",
				vi, s.Visits[vi].CtxWords, vi-1, groupWords(vi-1), s.Arch.CMWords)
		}
	}

	// Busy totals: the trace must account for exactly the simulator's
	// reported traffic, hoisted context bursts included.
	if busy := tl.BusyKind(trace.KindContext) + tl.BusyKind(trace.KindPrefetch); busy != res.CtxCycles {
		return violated("prefetch", "context spans total %d cycles, simulator reports %d", busy, res.CtxCycles)
	}
	if prefetchBusy != res.PrefetchCycles {
		return violated("prefetch", "prefetch spans total %d cycles, simulator reports %d", prefetchBusy, res.PrefetchCycles)
	}
	if busy := tl.BusyKind(trace.KindLoad) + tl.BusyKind(trace.KindStore); busy != res.DataCycles {
		return violated("prefetch", "data spans total %d cycles, simulator reports %d", busy, res.DataCycles)
	}
	if busy := tl.BusyKind(trace.KindCompute); busy != res.ComputeCycles {
		return violated("prefetch", "compute spans total %d cycles, simulator reports %d", busy, res.ComputeCycles)
	}
	return nil
}
