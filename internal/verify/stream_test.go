package verify

import (
	"errors"
	"strings"
	"testing"

	"cds/internal/core"
	"cds/internal/scherr"
	"cds/internal/sim"
	"cds/internal/trace"
	"cds/internal/workloads"
)

// Every streamed execution of every seed workload — serialized and
// prefetching — must pass the prefetch invariant family.
func TestStreamVerifiesClean(t *testing.T) {
	for _, e := range workloads.All() {
		for _, sched := range allSchedulers {
			s, err := sched.Schedule(e.Arch, e.Part)
			if errors.Is(err, scherr.ErrInfeasible) {
				continue
			}
			if err != nil {
				t.Fatalf("%s/%s: schedule: %v", e.Name, sched.Name(), err)
			}
			for _, prefetch := range []bool{false, true} {
				if err := Stream(s, sim.StreamOpts{Prefetch: prefetch}); err != nil {
					t.Errorf("%s/%s prefetch=%v: %v", e.Name, sched.Name(), prefetch, err)
				}
			}
		}
	}
}

// streamFixture returns a verified streamed execution of the MPEG
// schedule ready for tampering.
func streamFixture(t *testing.T, prefetch bool) (*core.Schedule, sim.StreamOpts, *sim.Result, *trace.Timeline) {
	t.Helper()
	e := workloads.MPEG()
	s, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
	if err != nil {
		t.Fatal(err)
	}
	o := sim.StreamOpts{Prefetch: prefetch}
	res, tl, err := sim.TraceStream(s, "", o)
	if err != nil {
		t.Fatal(err)
	}
	if err := StreamTimeline(s, o, res, tl); err != nil {
		t.Fatalf("fixture not clean: %v", err)
	}
	return s, o, res, tl
}

func wantPrefetchViolation(t *testing.T, err error, frag string) {
	t.Helper()
	if err == nil {
		t.Fatalf("tamper not detected (want %q)", frag)
	}
	if !errors.Is(err, scherr.ErrVerify) {
		t.Fatalf("violation %v does not match ErrVerify", err)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("violation %v does not mention %q", err, frag)
	}
	var ve *Error
	if !errors.As(err, &ve) || ve.Invariant != "prefetch" {
		t.Fatalf("violation %v not in the prefetch family", err)
	}
}

func TestStreamDetectsLateResidency(t *testing.T) {
	s, o, res, tl := streamFixture(t, true)
	// Claim a visit's compute started before its context burst finished.
	for _, sp := range tl.Spans {
		if sp.Resource == trace.DMA && (sp.Kind == trace.KindContext || sp.Kind == trace.KindPrefetch) {
			res.VisitStart[sp.Visit] = sp.End - 1
			break
		}
	}
	wantPrefetchViolation(t, StreamTimeline(s, o, res, tl), "not resident before compute start")
}

func TestStreamDetectsEarlyIssue(t *testing.T) {
	s, _, res, tl := streamFixture(t, false)
	o := sim.StreamOpts{Visits: make([]sim.StreamVisit, len(s.Visits))}
	// Claim every visit arrived only at cycle 10^9: everything issued
	// too early.
	for i := range o.Visits {
		o.Visits[i].Ready = 1_000_000_000
	}
	wantPrefetchViolation(t, StreamTimeline(s, o, res, tl), "before stream arrival")
}

func TestStreamDetectsForbiddenOverlap(t *testing.T) {
	s, _, res, tl := streamFixture(t, true)
	// The prefetching timeline hoists transfers into compute windows;
	// auditing it as a serialized run must fail — either on a prefetch
	// span existing at all, or on the overlap itself.
	err := StreamTimeline(s, sim.StreamOpts{}, res, tl)
	if err == nil {
		t.Fatal("prefetching timeline accepted as a serialized run")
	}
	if !errors.Is(err, scherr.ErrVerify) {
		t.Fatalf("violation %v does not match ErrVerify", err)
	}
}

func TestStreamDetectsSameSetPrefetch(t *testing.T) {
	s, o, res, tl := streamFixture(t, true)
	// Relabel a prefetched visit's FB set to collide with its
	// predecessor's.
	tampered := false
	for _, sp := range tl.Spans {
		if sp.Kind == trace.KindPrefetch {
			s.Visits[sp.Visit].Set = s.Visits[sp.Visit-1].Set
			tampered = true
			break
		}
	}
	if !tampered {
		t.Skip("no prefetch span in the MPEG stream (model changed?)")
	}
	wantPrefetchViolation(t, StreamTimeline(s, o, res, tl), "while visit")
}

func TestStreamDetectsCMOverflow(t *testing.T) {
	s, _, res, tl := streamFixture(t, true)
	// Declare a working set that leaves no room for any hoisted words.
	o := sim.StreamOpts{Prefetch: true, Visits: make([]sim.StreamVisit, len(s.Visits))}
	for i := range o.Visits {
		o.Visits[i].GroupWords = s.Arch.CMWords
	}
	wantPrefetchViolation(t, StreamTimeline(s, o, res, tl), "would evict")
}

func TestStreamDetectsBusyMismatch(t *testing.T) {
	s, o, res, tl := streamFixture(t, true)
	res.PrefetchCycles++
	wantPrefetchViolation(t, StreamTimeline(s, o, res, tl), "prefetch spans total")
}

func TestStreamRejectsShapeMismatches(t *testing.T) {
	s, o, res, tl := streamFixture(t, true)
	if err := StreamTimeline(nil, o, res, tl); err == nil {
		t.Error("nil schedule accepted")
	}
	if err := Stream(nil, o); err == nil {
		t.Error("Stream accepted nil schedule")
	}
	bad := sim.StreamOpts{Visits: []sim.StreamVisit{{}}}
	if err := StreamTimeline(s, bad, res, tl); err == nil {
		t.Error("mismatched opts length accepted")
	}
	short := *res
	short.VisitStart = res.VisitStart[:1]
	if err := StreamTimeline(s, o, &short, tl); err == nil {
		t.Error("truncated result accepted")
	}
}
