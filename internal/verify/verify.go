// Package verify is the post-hoc invariant checker for schedules: it
// extends the codegen checker's program-level discipline to whole
// schedules, so any scheduler output — hand-written, fuzzed or produced
// by a buggy policy — can be audited before it is trusted.
//
// Checked invariant families, each named in the returned *Error:
//
//	structure     — core.ValidateSchedule's visit/volume consistency
//	capacity      — the Frame Buffer allocation replay fits every set,
//	                live bytes never exceed FBSetBytes and placements
//	                stay in bounds without overlapping
//	liveness      — no kernel reads a datum instance that is dead
//	                (released) or never written (neither loaded from
//	                external memory nor produced by an earlier kernel),
//	                and every store drains a written placement
//	serialization — the timing simulator's single-DMA-channel model
//	                holds: wall clock dominates both the serialized DMA
//	                busy time and compute+stall, and visits execute in
//	                order on the RC array
//	timeline      — the traced execution is exact: per-resource spans
//	                tile the makespan (busy + idle, no overlaps) and
//	                the trace's busy totals equal the simulator's
//	                reported compute and transfer cycles
//	residency     — the generated transfer program passes codegen.Check
//	                (contexts resident before EXEC, FB ranges legal,
//	                volumes matching the schedule)
//	fairness      — a multi-tenant plan (fairness.go) respects its
//	                quotas, preempts only at cluster boundaries, keeps
//	                weighted-share lag bounded and never beats any
//	                tenant's solo lower bound
//
// All violations match scherr.ErrVerify under errors.Is.
package verify

import (
	"fmt"

	"cds/internal/codegen"
	"cds/internal/core"
	"cds/internal/scherr"
	"cds/internal/sim"
	"cds/internal/trace"
)

// Error is one invariant violation found by the verifier.
type Error struct {
	// Invariant names the violated family: "structure", "capacity",
	// "liveness", "serialization", "timeline" or "residency".
	Invariant string
	// Err details the violation.
	Err error
}

func (e *Error) Error() string {
	return fmt.Sprintf("verify: %s invariant violated: %v", e.Invariant, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// Is makes every verifier error match scherr.ErrVerify.
func (e *Error) Is(target error) bool { return target == scherr.ErrVerify }

func violated(invariant string, format string, args ...any) error {
	return &Error{Invariant: invariant, Err: fmt.Errorf(format, args...)}
}

// Schedule audits every invariant family against the schedule. A nil
// error means the schedule is structurally sound, fits the machine, only
// reads live written data, respects DMA serialization and keeps contexts
// resident ahead of every EXEC.
func Schedule(s *core.Schedule) error {
	if s == nil {
		return violated("structure", "nil schedule")
	}
	if err := core.ValidateSchedule(s); err != nil {
		return &Error{Invariant: "structure", Err: err}
	}
	rep, err := core.Allocate(s, true)
	if err != nil {
		return &Error{Invariant: "capacity", Err: err}
	}
	if err := checkCapacity(s, rep); err != nil {
		return err
	}
	if err := checkLiveness(s, rep); err != nil {
		return err
	}
	if err := checkSerialization(s); err != nil {
		return err
	}
	if err := checkTimeline(s); err != nil {
		return err
	}
	prog, err := codegen.Generate(s)
	if err != nil {
		return &Error{Invariant: "residency", Err: err}
	}
	if _, err := codegen.Check(prog, s); err != nil {
		return &Error{Invariant: "residency", Err: err}
	}
	return nil
}

// checkCapacity replays the allocation events and asserts that live
// bytes never exceed the set capacity, placements stay inside the set
// and (absent splitting) no two live placements overlap.
func checkCapacity(s *core.Schedule, rep *core.AllocationReport) error {
	cap := s.Arch.FBSetBytes
	type key struct {
		set  int
		inst string
	}
	live := map[key]core.AllocEvent{}
	used := map[int]int{}
	for i, ev := range rep.Events {
		k := key{ev.Set, ev.Object}
		switch ev.Op {
		case core.OpAlloc:
			if _, dup := live[k]; dup {
				return violated("capacity", "event %d: %q allocated twice on set %d", i, ev.Object, ev.Set)
			}
			if ev.Bytes <= 0 {
				return violated("capacity", "event %d: %q has non-positive size %d", i, ev.Object, ev.Bytes)
			}
			if !ev.Split && (ev.Addr < 0 || ev.Addr+ev.Bytes > cap) {
				return violated("capacity", "event %d: %q at [%d,%d) outside set of %d bytes",
					i, ev.Object, ev.Addr, ev.Addr+ev.Bytes, cap)
			}
			if rep.Splits == 0 {
				for ok, oe := range live {
					if ok.set == ev.Set && ev.Addr < oe.Addr+oe.Bytes && oe.Addr < ev.Addr+ev.Bytes {
						return violated("capacity", "event %d: %q [%d,%d) overlaps live %q [%d,%d) on set %d",
							i, ev.Object, ev.Addr, ev.Addr+ev.Bytes, oe.Object, oe.Addr, oe.Addr+oe.Bytes, ev.Set)
					}
				}
			}
			live[k] = ev
			used[ev.Set] += ev.Bytes
			if used[ev.Set] > cap {
				return violated("capacity", "event %d: set %d holds %d live bytes, capacity %d",
					i, ev.Set, used[ev.Set], cap)
			}
		case core.OpRelease:
			le, ok := live[k]
			if !ok {
				return violated("capacity", "event %d: release of %q which is not live on set %d", i, ev.Object, ev.Set)
			}
			delete(live, k)
			used[ev.Set] -= le.Bytes
		}
	}
	for set, peak := range rep.PeakUsed {
		if peak > cap {
			return violated("capacity", "set %d peak occupancy %d exceeds capacity %d", set, peak, cap)
		}
	}
	return nil
}

// checkSerialization runs the timing simulator and asserts the
// single-DMA-channel execution model: the wall clock dominates both the
// serialized DMA busy time and the RC-array timeline (compute plus
// stalls), and visits start in order after their predecessor's compute.
func checkSerialization(s *core.Schedule) error {
	res, err := sim.Run(s)
	if err != nil {
		return &Error{Invariant: "serialization", Err: err}
	}
	if res.TotalCycles < res.DMABusy() {
		return violated("serialization", "total %d cycles < serialized DMA busy %d — transfers overlapped on one channel",
			res.TotalCycles, res.DMABusy())
	}
	if res.TotalCycles < res.ComputeCycles+res.StallCycles {
		return violated("serialization", "total %d cycles < compute %d + stalls %d",
			res.TotalCycles, res.ComputeCycles, res.StallCycles)
	}
	for vi := range res.VisitStart {
		if res.VisitEnd[vi] < res.VisitStart[vi] {
			return violated("serialization", "visit %d ends (%d) before it starts (%d)",
				vi, res.VisitEnd[vi], res.VisitStart[vi])
		}
		if vi > 0 && res.VisitStart[vi] < res.VisitEnd[vi-1] {
			return violated("serialization", "visit %d starts at %d while visit %d computes until %d — RC array double-booked",
				vi, res.VisitStart[vi], vi-1, res.VisitEnd[vi-1])
		}
	}
	return nil
}

// checkTimeline runs the traced simulation and asserts the recorded
// execution is exact: on each resource the spans tile the makespan —
// non-overlapping, in bounds, busy plus idle equal to the wall clock —
// and the trace's busy totals agree with the simulator's accounting
// (DMA spans sum to the reported transfer cycles, compute spans to the
// reported compute cycles).
func checkTimeline(s *core.Schedule) error {
	res, tl, err := sim.Trace(s)
	if err != nil {
		return &Error{Invariant: "timeline", Err: err}
	}
	if _, err := trace.Tile(tl); err != nil {
		return &Error{Invariant: "timeline", Err: err}
	}
	if busy := tl.Busy(trace.DMA); busy != res.DMABusy() {
		return violated("timeline", "DMA spans sum to %d cycles, simulator reports %d", busy, res.DMABusy())
	}
	if busy := tl.Busy(trace.RCArray); busy != res.ComputeCycles {
		return violated("timeline", "compute spans sum to %d cycles, simulator reports %d", busy, res.ComputeCycles)
	}
	if busy := tl.BusyKind(trace.KindContext); busy != res.CtxCycles {
		return violated("timeline", "context spans sum to %d cycles, simulator reports %d", busy, res.CtxCycles)
	}
	return nil
}
