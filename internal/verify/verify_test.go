package verify

import (
	"errors"
	"fmt"
	"testing"

	"cds/internal/core"
	"cds/internal/scherr"
	"cds/internal/workloads"
)

var allSchedulers = []core.Scheduler{
	core.Basic{},
	core.DataScheduler{},
	core.CompleteDataScheduler{},
	core.CompleteDataScheduler{RF: core.RFSweep},
}

// TestSeedWorkloadsVerifyClean is the headline acceptance check: every
// schedule any scheduler produces for the paper's experiments passes the
// full invariant audit. Infeasible (scheduler, workload) combinations —
// e.g. Basic on the MPEG memory floor — are skipped, not failed.
func TestSeedWorkloadsVerifyClean(t *testing.T) {
	for _, e := range workloads.All() {
		for _, sched := range allSchedulers {
			s, err := sched.Schedule(e.Arch, e.Part)
			if errors.Is(err, scherr.ErrInfeasible) {
				continue
			}
			if err != nil {
				t.Errorf("%s/%s: schedule: %v", e.Name, sched.Name(), err)
				continue
			}
			if err := Schedule(s); err != nil {
				t.Errorf("%s/%s: %v", e.Name, sched.Name(), err)
			}
		}
	}
}

func TestSyntheticWorkloadsVerifyClean(t *testing.T) {
	cfgs := []workloads.SyntheticConfig{workloads.DefaultSynthetic()}
	big := workloads.DefaultSynthetic()
	big.Clusters, big.Iterations = 8, 24
	cfgs = append(cfgs, big)
	for ci, cfg := range cfgs {
		pa := workloads.SyntheticArch(cfg)
		for seed := int64(1); seed <= 3; seed++ {
			part, err := workloads.Synthetic(cfg, seed)
			if err != nil {
				t.Fatalf("cfg %d seed %d: %v", ci, seed, err)
			}
			for _, sched := range allSchedulers {
				s, err := sched.Schedule(pa, part)
				if errors.Is(err, scherr.ErrInfeasible) {
					continue
				}
				if err != nil {
					t.Errorf("cfg %d seed %d %s: schedule: %v", ci, seed, sched.Name(), err)
					continue
				}
				if err := Schedule(s); err != nil {
					t.Errorf("cfg %d seed %d %s: %v", ci, seed, sched.Name(), err)
				}
			}
		}
	}
}

func mpegCDS(t *testing.T) *core.Schedule {
	t.Helper()
	e, err := workloads.ByName("MPEG")
	if err != nil {
		t.Fatal(err)
	}
	s, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// wantViolation asserts err is a verifier error of the named invariant
// family that matches scherr.ErrVerify.
func wantViolation(t *testing.T, err error, invariant string) {
	t.Helper()
	if err == nil {
		t.Fatalf("corrupted schedule verified clean, want %s violation", invariant)
	}
	if !errors.Is(err, scherr.ErrVerify) {
		t.Fatalf("err = %v, does not match scherr.ErrVerify", err)
	}
	var ve *Error
	if !errors.As(err, &ve) {
		t.Fatalf("err = %v, not a *verify.Error", err)
	}
	if ve.Invariant != invariant {
		t.Fatalf("violated invariant %q (%v), want %q", ve.Invariant, err, invariant)
	}
}

func TestNilScheduleRejected(t *testing.T) {
	wantViolation(t, Schedule(nil), "structure")
}

// TestDetectsVolumeTamper corrupts a load's byte volume; the structure
// family (core.ValidateSchedule) must flag it.
func TestDetectsVolumeTamper(t *testing.T) {
	s := mpegCDS(t)
	tampered := false
	for vi := range s.Visits {
		if len(s.Visits[vi].Loads) > 0 {
			s.Visits[vi].Loads[0].Bytes++
			tampered = true
			break
		}
	}
	if !tampered {
		t.Fatal("no visit with loads to tamper")
	}
	wantViolation(t, Schedule(s), "structure")
}

// TestDetectsDroppedLoad removes an entire load movement, leaving all
// remaining volumes self-consistent: structure passes, but the kernels
// then read data that was never brought on chip — a liveness violation.
func TestDetectsDroppedLoad(t *testing.T) {
	s := mpegCDS(t)
	dropped := false
	for vi := range s.Visits {
		v := &s.Visits[vi]
		if len(v.Loads) > 0 {
			v.Loads = v.Loads[1:]
			dropped = true
			break
		}
	}
	if !dropped {
		t.Fatal("no visit with loads to drop")
	}
	err := Schedule(s)
	if err == nil {
		t.Fatal("schedule with a dropped load verified clean")
	}
	if !errors.Is(err, scherr.ErrVerify) {
		t.Fatalf("err = %v, does not match scherr.ErrVerify", err)
	}
}

// TestDetectsCapacityTamper shrinks the Frame Buffer after scheduling:
// the allocation replay no longer fits and the capacity family reports
// it, wrapping the allocator's scherr.ErrCapacity class.
func TestDetectsCapacityTamper(t *testing.T) {
	s := mpegCDS(t)
	s.Arch.FBSetBytes = 64
	err := Schedule(s)
	if err == nil {
		t.Fatal("schedule on a shrunken FB verified clean")
	}
	if !errors.Is(err, scherr.ErrVerify) {
		t.Fatalf("err = %v, does not match scherr.ErrVerify", err)
	}
}

func TestErrorRendering(t *testing.T) {
	err := violated("capacity", "set %d over", 1)
	want := "verify: capacity invariant violated: set 1 over"
	if err.Error() != want {
		t.Fatalf("Error() = %q, want %q", err.Error(), want)
	}
	var ve *Error
	if !errors.As(err, &ve) || ve.Unwrap() == nil {
		t.Fatal("violated() must produce an unwrappable *Error")
	}
	if errors.Is(err, scherr.ErrInfeasible) {
		t.Fatal("verify errors must not match other taxonomy classes")
	}
	wrapped := fmt.Errorf("outer: %w", err)
	if !errors.Is(wrapped, scherr.ErrVerify) {
		t.Fatal("wrapped verifier error lost its class")
	}
}
