package workloads

// The bursty-arrival generator: seeded, random-access streams of
// arrival scenarios for the online scheduler (internal/stream). Where
// GenSpec emits whole applications known at t=0, GenArrivals emits the
// same structure space as a stream: the scenario switches through a few
// phases (each phase drawn from one corpus structure class), each phase
// contributes a burst of segments whose arrival gaps follow a
// phase-specific Poisson process (exponential inter-arrival times,
// small inside a burst, large across phase switches), and later phases
// sometimes consume data produced by earlier ones — cross-segment
// dataflow that travels through external memory under the streaming
// semantics.
//
// The result is the merged offline application plus the burst
// structure; stream.Split(a.Spec, a.SegClusters, a.ArriveAt) turns it
// into the arrival log. (The indirection keeps this package free of an
// internal/stream — and therefore internal/sim — dependency, which the
// simulator's own workload-driven tests would turn into a cycle.)
//
// Like GenSpec, the stream is pure in (seed, index): scenario i of seed
// s depends on nothing else, so diffuzz workers generate points
// independently and a replan benchmark regenerates exactly the log it
// measured.

import (
	"fmt"
	"math/rand"

	"cds/internal/arch"
	"cds/internal/spec"
)

// ArrivalStream is one generated arrival scenario.
type ArrivalStream struct {
	// Name is the scenario's canonical corpus name (see ArrivalName).
	Name string
	// Spec is the merged offline application every segment folds into.
	Spec *spec.Spec
	// SegClusters[i] consecutive clusters of Spec form segment i,
	// arriving at cycle ArriveAt[i] (nondecreasing).
	SegClusters []int
	ArriveAt    []int
}

// ArrivalName is the canonical name of arrival scenario i of a seed's
// stream; diffuzz journals and benchmarks key on it.
func ArrivalName(seed int64, index int) string {
	return fmt.Sprintf("arrivals/s%d/%06d", seed, index)
}

// GenArrivals generates arrival scenario i of the seed's stream. The
// result always splits into a valid arrival log; whether every segment
// is schedulable on its machine is deliberately open, like GenSpec.
func GenArrivals(seed int64, index int) *ArrivalStream {
	sub := splitmix64(uint64(seed)*0x9e3779b97f4a7c15 + uint64(index)*0xda942042e4dd58b5 + 0x1f83d9abfb41bd6b)
	rng := rand.New(rand.NewSource(int64(sub)))

	name := ArrivalName(seed, index)
	iterations := 1 + rng.Intn(16)
	fbLadder := []int{1 * arch.KiB, 2 * arch.KiB, 4 * arch.KiB, 8 * arch.KiB}
	cmLadder := []int{256, 512, 1024}
	fb := fbLadder[rng.Intn(len(fbLadder))]
	cm := cmLadder[rng.Intn(len(cmLadder))]

	classes := Classes()
	start := rng.Intn(len(classes))
	phases := 2 + rng.Intn(3) // 2..4 phase switches

	a := &ArrivalStream{
		Name: name,
		Spec: &spec.Spec{
			Name:       name,
			Iterations: iterations,
			Arch:       &spec.Arch{FBSetBytes: fb, CMWords: cm},
		},
	}
	var produced []string // outputs of earlier phases, cross-link candidates
	at := 0

	for p := 0; p < phases; p++ {
		cls := classes[(start+p)%len(classes)]
		g := &genState{rng: rng, fb: fb, cm: cm, sp: &spec.Spec{
			Name:       fmt.Sprintf("%s/p%d", name, p),
			Iterations: iterations,
		}}
		g.genClass(cls)
		g.sp.PruneOrphanData()
		prefixSpec(g.sp, fmt.Sprintf("p%d.", p))

		// Cross-phase dataflow: a kernel of this phase sometimes reads a
		// result an earlier phase produced. The producing segment must
		// write it back (stream.Split marks it Final), and this phase
		// loads it from external memory — the streaming cost of
		// splitting an app.
		if len(produced) > 0 && rng.Float64() < 0.7 {
			d := produced[rng.Intn(len(produced))]
			k := &g.sp.Kernels[rng.Intn(len(g.sp.Kernels))]
			if !contains(k.Inputs, d) && !contains(k.Outputs, d) {
				k.Inputs = append(k.Inputs, d)
			}
		}
		for _, k := range g.sp.Kernels {
			produced = append(produced, k.Outputs...)
		}
		a.Spec.Data = append(a.Spec.Data, g.sp.Data...)
		a.Spec.Kernels = append(a.Spec.Kernels, g.sp.Kernels...)
		a.Spec.Clusters = append(a.Spec.Clusters, g.sp.Clusters...)

		// The phase's clusters arrive as a burst of segments: 1..3
		// clusters per segment, exponential gaps with a phase-specific
		// rate (Poisson arrivals within the burst), and a larger
		// mode-change gap at the phase switch.
		if p > 0 {
			at += 200 + int(rng.ExpFloat64()*400)
		}
		meanGap := float64(10 + rng.Intn(80))
		remaining := len(g.sp.Clusters)
		for remaining > 0 {
			n := 1 + rng.Intn(3)
			if n > remaining {
				n = remaining
			}
			a.SegClusters = append(a.SegClusters, n)
			a.ArriveAt = append(a.ArriveAt, at)
			at += 1 + int(rng.ExpFloat64()*meanGap)
			remaining -= n
		}
	}
	return a
}

// prefixSpec renames every datum, kernel and context group of the spec
// with a phase prefix, keeping names unique when phases merge into one
// application. Name lists are rewritten into fresh slices: the corpus
// generator may alias one kernel's Outputs as another's Inputs, and
// in-place renames would hit the shared elements twice.
func prefixSpec(sp *spec.Spec, prefix string) {
	prefixed := func(names []string) []string {
		if names == nil {
			return nil
		}
		out := make([]string, len(names))
		for i, n := range names {
			out[i] = prefix + n
		}
		return out
	}
	for i := range sp.Data {
		sp.Data[i].Name = prefix + sp.Data[i].Name
	}
	for i := range sp.Kernels {
		k := &sp.Kernels[i]
		k.Name = prefix + k.Name
		if k.ContextGroup != "" {
			k.ContextGroup = prefix + k.ContextGroup
		}
		k.Inputs = prefixed(k.Inputs)
		k.Outputs = prefixed(k.Outputs)
	}
}

func contains(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}
