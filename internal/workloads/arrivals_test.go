package workloads

import (
	"reflect"
	"testing"
)

// The arrival stream is pure in (seed, index): regeneration is exact,
// order of generation is irrelevant, and neighbours differ.
func TestGenArrivalsDeterministic(t *testing.T) {
	a := GenArrivals(42, 3)
	b := GenArrivals(42, 3)
	if !reflect.DeepEqual(a, b) {
		t.Error("regenerating the same scenario differs")
	}
	// Random access: generating other indices first must not disturb it.
	GenArrivals(42, 9)
	GenArrivals(42, 0)
	if c := GenArrivals(42, 3); !reflect.DeepEqual(a, c) {
		t.Error("scenario depends on generation order")
	}
	if d := GenArrivals(42, 4); reflect.DeepEqual(a.Spec, d.Spec) {
		t.Error("adjacent indices generated identical scenarios")
	}
	if e := GenArrivals(43, 3); reflect.DeepEqual(a.Spec, e.Spec) {
		t.Error("different seeds generated identical scenarios")
	}
}

func TestGenArrivalsShape(t *testing.T) {
	for i := 0; i < 24; i++ {
		a := GenArrivals(1, i)
		if a.Name != ArrivalName(1, i) {
			t.Fatalf("scenario %d named %q, want %q", i, a.Name, ArrivalName(1, i))
		}
		if len(a.SegClusters) != len(a.ArriveAt) {
			t.Fatalf("%s: %d segments but %d arrival times", a.Name, len(a.SegClusters), len(a.ArriveAt))
		}
		if len(a.SegClusters) < 2 {
			t.Errorf("%s: only %d segments; bursts should split phases", a.Name, len(a.SegClusters))
		}
		total := 0
		for _, n := range a.SegClusters {
			if n < 1 {
				t.Fatalf("%s: empty segment", a.Name)
			}
			total += n
		}
		if total != len(a.Spec.Clusters) {
			t.Errorf("%s: segments cover %d of %d clusters", a.Name, total, len(a.Spec.Clusters))
		}
		prev := 0
		for _, at := range a.ArriveAt {
			if at < prev {
				t.Fatalf("%s: arrivals not nondecreasing (%d after %d)", a.Name, at, prev)
			}
			prev = at
		}
		// The merged spec itself must be well-formed.
		if _, _, err := a.Spec.Build(); err != nil {
			t.Errorf("%s: merged spec does not build: %v", a.Name, err)
		}
	}
}
