package workloads

// The corpus generator is the scenario factory behind the differential
// fuzzer (internal/diffuzz): a seeded stream of JSON workload specs that
// spans the structure space the paper's twelve hand-built experiments only
// sample. Each spec is self-contained (application + machine overrides),
// buildable through internal/spec, and small enough that a three-scheduler
// comparison plus full verification runs in milliseconds — thousands of
// specs per fuzzing run.
//
// The stream is deterministic and random-access: spec i of seed s depends
// only on (s, i), never on generation order, so a worker pool can generate
// points independently and a resumed run regenerates exactly the specs it
// skipped. Classes rotate round-robin over the stream index, giving every
// class an equal share of any corpus prefix.

import (
	"fmt"
	"math/rand"

	"cds/internal/arch"
	"cds/internal/spec"
)

// Class names one region of the workload structure space.
type Class string

// The six structure classes, chosen to stress different scheduler
// mechanisms: deep chains serialize the dataflow, fan-out multiplies
// consumers of one datum, shared-heavy maximizes retention candidates,
// context-heavy drives the Context Memory to eviction, degenerate probes
// boundary shapes (single kernels, producer-only kernels, one-cluster
// apps) and mode-switching cycles a few shared context groups the way a
// multi-mode application alternates configurations.
const (
	ClassChain      Class = "chain"
	ClassFanout     Class = "fanout"
	ClassShared     Class = "shared"
	ClassCtxHeavy   Class = "ctx-heavy"
	ClassDegenerate Class = "degenerate"
	ClassModeSwitch Class = "mode-switch"
)

// Classes lists every structure class in stream rotation order.
func Classes() []Class {
	return []Class{ClassChain, ClassFanout, ClassShared, ClassCtxHeavy, ClassDegenerate, ClassModeSwitch}
}

// splitmix64 scrambles (seed, index) into an independent per-spec seed, so
// the stream is random-access: neighbouring indices get decorrelated
// generators without any shared rand state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SpecName is the canonical name of corpus point i of a seed's stream:
// the class plus the coordinates that regenerate it. Diffuzz journals key
// on it.
func SpecName(seed int64, index int) string {
	cls := Classes()[index%len(Classes())]
	return fmt.Sprintf("corpus/s%d/%06d-%s", seed, index, cls)
}

// GenSpec generates corpus point i of the seed's stream. The result is
// always structurally valid (it builds through spec.Build); whether it is
// schedulable on its machine is deliberately open — probing the
// infeasibility frontier is part of the corpus's job.
func GenSpec(seed int64, index int) *spec.Spec {
	classes := Classes()
	cls := classes[index%len(classes)]
	sub := splitmix64(uint64(seed)*0x9e3779b97f4a7c15 + uint64(index)*0xda942042e4dd58b5)
	rng := rand.New(rand.NewSource(int64(sub)))

	g := &genState{rng: rng, sp: &spec.Spec{
		Name:       SpecName(seed, index),
		Iterations: 1 + rng.Intn(24),
	}}
	// Machine: an FB/CM ladder around the paper's design points. Sizes
	// generated below stay within one FB set and one CM, so degeneracy
	// comes from structure, not from trivially-impossible inputs.
	fbLadder := []int{512, 1 * arch.KiB, 2 * arch.KiB, 3 * arch.KiB, 4 * arch.KiB, 8 * arch.KiB}
	cmLadder := []int{128, 256, 512, 1024}
	g.fb = fbLadder[rng.Intn(len(fbLadder))]
	g.cm = cmLadder[rng.Intn(len(cmLadder))]
	g.sp.Arch = &spec.Arch{FBSetBytes: g.fb, CMWords: g.cm}

	g.genClass(cls)
	// Classes that draw shared pools (tables, reuse candidates) can
	// leave a declared datum unused; an unreferenced datum fails spec
	// validation, so drop them.
	g.sp.PruneOrphanData()
	return g.sp
}

// genClass dispatches to one structure class's generator. GenSpec and
// the bursty-arrival generator (GenArrivals) share it, so the arrival
// stream's phases draw from the same structure space as the spec corpus.
func (g *genState) genClass(cls Class) {
	switch cls {
	case ClassChain:
		g.genChain()
	case ClassFanout:
		g.genFanout()
	case ClassShared:
		g.genShared()
	case ClassCtxHeavy:
		g.genCtxHeavy()
	case ClassDegenerate:
		g.genDegenerate()
	case ClassModeSwitch:
		g.genModeSwitch()
	}
}

// genState accumulates one spec under construction.
type genState struct {
	rng    *rand.Rand
	sp     *spec.Spec
	fb, cm int
}

// datum declares a fresh datum and returns its name.
func (g *genState) datum(prefix string, size int, streamed, final bool) string {
	name := fmt.Sprintf("%s%d", prefix, len(g.sp.Data))
	g.sp.Data = append(g.sp.Data, spec.Datum{Name: name, Size: size, Streamed: streamed, Final: final})
	return name
}

// size draws a datum size in [8, max] (at least 8).
func (g *genState) size(max int) int {
	if max < 8 {
		max = 8
	}
	return 8 + g.rng.Intn(max-7)
}

// dataSize draws a size small relative to the FB so multi-datum clusters
// usually fit, with a heavy tail that sometimes pushes a cluster past the
// footprint limit — the infeasibility frontier.
func (g *genState) dataSize() int {
	s := g.size(g.fb / 8)
	if g.rng.Float64() < 0.08 {
		s = g.size(g.fb / 2) // tail: a big object
	}
	return s
}

// ctxWords draws a context volume comfortably under the CM.
func (g *genState) ctxWords() int {
	w := 8 + g.rng.Intn(g.cm/4)
	return w
}

// kernel appends a kernel reading ins and producing nOut fresh outputs,
// returning the output names.
func (g *genState) kernel(ctxWords int, group string, ins []string, nOut int, outPrefix string) []string {
	k := spec.Kernel{
		Name:          fmt.Sprintf("k%d", len(g.sp.Kernels)),
		ContextWords:  ctxWords,
		ComputeCycles: 10 + g.rng.Intn(400),
		Inputs:        ins,
		ContextGroup:  group,
	}
	var outs []string
	for o := 0; o < nOut; o++ {
		final := g.rng.Float64() < 0.1
		outs = append(outs, g.datum(outPrefix, g.dataSize(), false, final))
	}
	k.Outputs = outs
	g.sp.Kernels = append(g.sp.Kernels, k)
	return outs
}

// input declares a fresh external input (sometimes streamed).
func (g *genState) input() string {
	return g.datum("in", g.dataSize(), g.rng.Float64() < 0.1, false)
}

// clusterSizes splits n kernels into cluster sizes between lo and hi.
func (g *genState) clusterSizes(n, lo, hi int) {
	g.sp.Clusters = nil
	for n > 0 {
		sz := lo
		if hi > lo {
			sz += g.rng.Intn(hi - lo + 1)
		}
		if sz > n {
			sz = n
		}
		g.sp.Clusters = append(g.sp.Clusters, sz)
		n -= sz
	}
}

// genChain builds a deep dependency chain: every kernel consumes its
// predecessor's output (serial dataflow across clusters and FB sets),
// optionally plus a private external input.
func (g *genState) genChain() {
	depth := 6 + g.rng.Intn(11) // 6..16 kernels
	prev := ""
	for i := 0; i < depth; i++ {
		var ins []string
		if prev != "" {
			ins = append(ins, prev)
		}
		if prev == "" || g.rng.Float64() < 0.5 {
			ins = append(ins, g.input())
		}
		outs := g.kernel(g.ctxWords(), "", ins, 1, "d")
		prev = outs[0]
	}
	g.clusterSizes(depth, 1, 2)
}

// genFanout builds wide fan-out: one early producer whose output (and one
// shared external table) is read by most downstream kernels.
func (g *genState) genFanout() {
	width := 6 + g.rng.Intn(10) // consumers
	table := g.input()
	root := g.kernel(g.ctxWords(), "", []string{g.input()}, 1, "hub")[0]
	for i := 0; i < width; i++ {
		ins := []string{root}
		if g.rng.Float64() < 0.7 {
			ins = append(ins, table)
		}
		if g.rng.Float64() < 0.3 {
			ins = append(ins, g.input())
		}
		g.kernel(g.ctxWords(), "", ins, 1, "d")
	}
	g.clusterSizes(width+1, 1, 3)
}

// genShared builds a shared-data-heavy app in the style of the paper's
// experiments, but denser: several tables shared across clusters, shared
// results feeding later clusters, plus random backward data edges.
func (g *genState) genShared() {
	clusters := 4 + g.rng.Intn(5) // 4..8 clusters
	perCluster := 1 + g.rng.Intn(3)
	nTables := 1 + g.rng.Intn(3)
	tables := make([]string, nTables)
	for i := range tables {
		tables[i] = g.input()
	}
	var produced []string // all outputs so far, candidates for reuse
	n := 0
	for c := 0; c < clusters; c++ {
		for k := 0; k < perCluster; k++ {
			var ins []string
			if g.rng.Float64() < 0.8 {
				ins = append(ins, tables[g.rng.Intn(nTables)])
			}
			if len(produced) > 0 && g.rng.Float64() < 0.6 {
				ins = append(ins, produced[g.rng.Intn(len(produced))])
			}
			if len(ins) == 0 || g.rng.Float64() < 0.4 {
				ins = append(ins, g.input())
			}
			ins = dedup(ins)
			outs := g.kernel(g.ctxWords(), "", ins, 1, "d")
			produced = append(produced, outs...)
			n++
		}
	}
	g.clusterSizes(n, perCluster, perCluster)
}

// genCtxHeavy builds a context-dominated app: tiny data, context volumes
// near the CM capacity and many single- or two-kernel clusters, so context
// reloads dominate and the CM cycles through eviction.
func (g *genState) genCtxHeavy() {
	kn := 5 + g.rng.Intn(8)
	for i := 0; i < kn; i++ {
		words := g.cm/3 + g.rng.Intn(g.cm/2) // big: 1/3..5/6 of the CM
		if words > g.cm {
			words = g.cm
		}
		ins := []string{g.datum("in", g.size(32), false, false)}
		k := spec.Kernel{
			Name:          fmt.Sprintf("k%d", len(g.sp.Kernels)),
			ContextWords:  words,
			ComputeCycles: 10 + g.rng.Intn(100),
			Inputs:        ins,
			Outputs:       []string{g.datum("out", g.size(24), false, false)},
		}
		g.sp.Kernels = append(g.sp.Kernels, k)
	}
	g.clusterSizes(kn, 1, 2)
}

// genDegenerate builds boundary shapes: a single-kernel app, producer-only
// kernels (no inputs), one-cluster apps, iteration count 1.
func (g *genState) genDegenerate() {
	switch g.rng.Intn(4) {
	case 0: // the smallest possible app
		g.sp.Iterations = 1
		g.kernel(g.ctxWords(), "", []string{g.input()}, 1, "out")
		g.sp.Clusters = []int{1}
	case 1: // producer-only kernel feeding one consumer
		outs := g.kernel(g.ctxWords(), "", nil, 1, "gen")
		g.kernel(g.ctxWords(), "", outs, 1, "out")
		g.sp.Clusters = []int{1, 1}
	case 2: // one big cluster holding the whole app
		kn := 3 + g.rng.Intn(4)
		prev := ""
		for i := 0; i < kn; i++ {
			var ins []string
			if prev != "" {
				ins = append(ins, prev)
			} else {
				ins = append(ins, g.input())
			}
			prev = g.kernel(g.ctxWords(), "", ins, 1, "d")[0]
		}
		g.sp.Clusters = []int{kn}
	default: // many single-kernel clusters, zero sharing
		kn := 4 + g.rng.Intn(6)
		for i := 0; i < kn; i++ {
			g.kernel(g.ctxWords(), "", []string{g.input()}, 1, "d")
		}
		g.clusterSizes(kn, 1, 1)
	}
}

// genModeSwitch builds a multi-mode app: kernels cycle through a few
// shared context groups (modes), so the same configurations alternate in
// the Context Memory the way a mode-switching application re-enters its
// modes. All kernels of a mode share one context volume, matching the
// tiling contract behind ContextGroup.
func (g *genState) genModeSwitch() {
	modes := 2 + g.rng.Intn(2) // 2..3 modes
	words := make([]int, modes)
	for m := range words {
		words[m] = g.cm/4 + g.rng.Intn(g.cm/3)
	}
	kn := 6 + g.rng.Intn(9)
	prev := ""
	for i := 0; i < kn; i++ {
		m := i % modes
		var ins []string
		if prev != "" && g.rng.Float64() < 0.6 {
			ins = append(ins, prev)
		}
		if len(ins) == 0 || g.rng.Float64() < 0.4 {
			ins = append(ins, g.input())
		}
		outs := []string{g.datum("d", g.dataSize(), false, false)}
		g.sp.Kernels = append(g.sp.Kernels, spec.Kernel{
			Name:          fmt.Sprintf("k%d", len(g.sp.Kernels)),
			ContextWords:  words[m],
			ComputeCycles: 10 + g.rng.Intn(200),
			Inputs:        ins,
			Outputs:       outs,
			ContextGroup:  fmt.Sprintf("mode%d", m),
		})
		prev = outs[0]
	}
	g.clusterSizes(kn, 1, 3)
}

// dedup removes duplicate names preserving first occurrence.
func dedup(names []string) []string {
	seen := make(map[string]bool, len(names))
	out := names[:0]
	for _, n := range names {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}
