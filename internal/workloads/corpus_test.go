package workloads

import (
	"bytes"
	"testing"
)

// TestCorpusDeterministic: GenSpec is a pure function of (seed, index) —
// re-generating any point yields a byte-identical document, regardless of
// what was generated before it. This is what lets a resumed or
// parallelized fuzzing run regenerate exactly the specs it skipped.
func TestCorpusDeterministic(t *testing.T) {
	const n = 60
	first := make([][]byte, n)
	for i := 0; i < n; i++ {
		raw, err := GenSpec(11, i).Marshal()
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		first[i] = raw
	}
	// Regenerate in reverse order: random access must not change a byte.
	for i := n - 1; i >= 0; i-- {
		raw, err := GenSpec(11, i).Marshal()
		if err != nil {
			t.Fatalf("point %d: %v", i, err)
		}
		if !bytes.Equal(raw, first[i]) {
			t.Fatalf("point %d differs between generation orders:\n%s\nvs\n%s", i, first[i], raw)
		}
	}
}

// TestCorpusSeedsDiffer: different seeds explore different specs (a
// collision across the first points would mean the seed is ignored).
func TestCorpusSeedsDiffer(t *testing.T) {
	a, _ := GenSpec(1, 0).Marshal()
	b, _ := GenSpec(2, 0).Marshal()
	if bytes.Equal(a, b) {
		t.Fatal("seeds 1 and 2 generated identical first points")
	}
}

// TestCorpusAllPointsBuild: every generated spec must validate and build —
// an unbuildable point is a generator bug (the fuzzer reports it as an
// invalid-spec counterexample, so the corpus must be clean by
// construction).
func TestCorpusAllPointsBuild(t *testing.T) {
	for i := 0; i < 200; i++ {
		sp := GenSpec(1, i)
		if _, _, err := sp.Build(); err != nil {
			t.Errorf("point %d (%s): %v", i, sp.Name, err)
		}
	}
}

// TestCorpusCoversAllClasses: the round-robin rotation touches every
// structure class in every window of len(Classes()) points, and SpecName
// matches the generated spec's own name.
func TestCorpusCoversAllClasses(t *testing.T) {
	classes := Classes()
	seen := map[Class]bool{}
	for i := 0; i < len(classes); i++ {
		sp := GenSpec(4, i)
		if sp.Name != SpecName(4, i) {
			t.Fatalf("point %d: spec name %q != SpecName %q", i, sp.Name, SpecName(4, i))
		}
		seen[classes[i%len(classes)]] = true
	}
	for _, c := range classes {
		if !seen[c] {
			t.Errorf("class %s not covered in the first rotation", c)
		}
	}
}
