package workloads

import (
	"fmt"

	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/kernels"
)

// FromLibrary builds a workload whose scheduling metadata comes straight
// from the functional kernel library: context volumes are the kernels'
// real context-word counts, compute times their real array step counts,
// and data sizes their real input/output word counts (16-bit words, so
// bytes = 2x). This ties the scheduling layer to programs that actually
// execute on the RC-array simulator (see cmd/morphsim).
//
// The application is a small vision pipeline over one 8x8 block per
// iteration:
//
//	cluster 0 (set 0): dct8 -> scale     (transform + quantize)
//	cluster 1 (set 1): threshold         (detection map)
//	cluster 2 (set 0): sad8              (motion metric vs a reference)
//
// The quantized block q is a cross-cluster result (c0 -> c1); the block
// pair for SAD shares the current block with cluster 0 via the FB set.
func FromLibrary(iterations int) (*app.Partition, arch.Params, error) {
	lib := kernels.Library()
	get := func(name string) (*kernels.Kernel, error) {
		k, ok := lib[name]
		if !ok {
			return nil, fmt.Errorf("workloads: library kernel %q missing", name)
		}
		return k, nil
	}
	dct, err := get("dct8")
	if err != nil {
		return nil, arch.Params{}, err
	}
	scale, err := get("scale")
	if err != nil {
		return nil, arch.Params{}, err
	}
	thr, err := get("threshold")
	if err != nil {
		return nil, arch.Params{}, err
	}
	sad, err := get("sad8")
	if err != nil {
		return nil, arch.Params{}, err
	}

	// The array is fully pipelined at the step level, but one "compute
	// cycle" per step undersells real execution; scale by the array
	// row count to keep compute and transfer cycles comparable.
	cycles := func(k *kernels.Kernel) int { return 8 * k.ComputeCycles() }
	words := func(w int) int { return 2 * w }

	b := app.NewBuilder("vision", iterations).
		Datum("block", words(dct.InWords)). // current 8x8 block
		Datum("coef", words(dct.OutWords)). // DCT coefficients
		Datum("q", words(scale.OutWords)).  // quantized block: c0 -> c1
		Datum("mask", words(thr.OutWords)). // detection map (final)
		Datum("pair", words(sad.InWords)).  // block pair for motion SAD
		Datum("sads", words(sad.OutWords))  // per-row SADs (final)
	b.Kernel("dct8", dct.ContextWords(), cycles(dct)).In("block").Out("coef")
	b.Kernel("scale", scale.ContextWords(), cycles(scale)).In("coef").Out("q")
	b.Kernel("threshold", thr.ContextWords(), cycles(thr)).In("q").Out("mask")
	b.Kernel("sad8", sad.ContextWords(), cycles(sad)).In("pair").Out("sads")
	a, err := b.Build()
	if err != nil {
		return nil, arch.Params{}, err
	}
	part, err := app.NewPartition(a, 2, 2, 1, 1)
	if err != nil {
		return nil, arch.Params{}, err
	}
	pa := arch.M1()
	pa.FBSetBytes = 1 * arch.KiB
	pa.CMWords = 256
	return part, pa, nil
}
