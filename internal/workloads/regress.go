package workloads

import "cds/internal/spec"

// Regressions returns the minimized counterexample workloads the
// differential fuzzer (cmd/diffuzz) has found, each pinned by a test in
// internal/diffuzz. Every entry is the delta-minimized kernel of one real
// scheduler bug, kept small on purpose: the spec IS the bug report.
//
// Keep the list append-only; a future fuzzing run that finds a new bug
// adds its minimized spec here under a "regress/" name after the fix.
func Regressions() []*spec.Spec {
	return []*spec.Spec{
		regressRFTailStore(),
		regressStreamedSharedConsumers(),
		regressStreamedRetained(),
	}
}

// regressRFTailStore reproduced a Basic/DS dominance inversion (seed 1,
// point 000004): two input-less single-kernel clusters over two
// iterations. At RF = 2 the Data Scheduler batches each cluster's stores
// into one burst, and the final visit's burst lands entirely after the
// last compute cycle — one bus beat more exposed tail than Basic's
// per-iteration stores, which overlap computation. Fixed by guarding the
// reuse-factor choice with the timing model (core.DataScheduler.Eval):
// the scheduler now keeps RF = 1 here.
func regressRFTailStore() *spec.Spec {
	return &spec.Spec{
		Name:       "regress/rf-tail-store",
		Iterations: 2,
		Arch:       &spec.Arch{FBSetBytes: 8192, CMWords: 1024},
		Data: []spec.Datum{
			{Name: "gen0", Size: 1},
			{Name: "out1", Size: 4},
		},
		Kernels: []spec.Kernel{
			{Name: "k0", ContextWords: 1, ComputeCycles: 12, Outputs: []string{"gen0"}},
			{Name: "k1", ContextWords: 1, ComputeCycles: 11, Outputs: []string{"out1"}},
		},
		Clusters: []int{1, 1},
	}
}

// regressStreamedSharedConsumers reproduced a Basic Scheduler residency
// violation (seed 1, point 000038): a streamed datum read by two kernels
// of the same cluster was charged once per consumer in the schedule's
// load list, but the allocator places a streamed tile exactly once (just
// in time for its first consumer), so the generated program moved fewer
// bytes than the schedule claimed. Fixed in core.buildVisits: streamed
// inputs are exempt from Basic's per-kernel duplication.
func regressStreamedSharedConsumers() *spec.Spec {
	return &spec.Spec{
		Name:       "regress/streamed-shared-consumers",
		Iterations: 1,
		Arch:       &spec.Arch{FBSetBytes: 3072, CMWords: 512},
		Data: []spec.Datum{
			{Name: "in1", Size: 1, Streamed: true},
			{Name: "d6", Size: 1, Final: true},
			{Name: "d8", Size: 1, Final: true},
		},
		Kernels: []spec.Kernel{
			{Name: "k2", ContextWords: 1, ComputeCycles: 1, Inputs: []string{"in1"}, Outputs: []string{"d6"}},
			{Name: "k3", ContextWords: 1, ComputeCycles: 1, Inputs: []string{"in1"}, Outputs: []string{"d8"}},
		},
		Clusters: []int{2},
	}
}

// regressStreamedRetained reproduced a Complete Data Scheduler residency
// violation (seed 1, point 000050): a streamed datum shared by two
// same-set clusters becomes a retention candidate, and the retaining
// cluster places it in the allocator's pre-visit phase — but codegen only
// emitted streamed loads at in-visit placement events, so the one charged
// load never appeared in the program. Fixed in codegen.Generate: a
// streamed instance already resident when the visit's load list is walked
// is emitted there like any retained input.
func regressStreamedRetained() *spec.Spec {
	return &spec.Spec{
		Name:       "regress/streamed-retained",
		Iterations: 1,
		Arch:       &spec.Arch{FBSetBytes: 2048, CMWords: 128},
		Data: []spec.Datum{
			{Name: "in0", Size: 1, Streamed: true},
			{Name: "d3", Size: 1},
			{Name: "d7", Size: 1},
			{Name: "d10", Size: 1},
		},
		Kernels: []spec.Kernel{
			{Name: "k0", ContextWords: 1, ComputeCycles: 1, Inputs: []string{"in0"}, Outputs: []string{"d3"}},
			{Name: "k2", ContextWords: 1, ComputeCycles: 1, Outputs: []string{"d7"}},
			{Name: "k4", ContextWords: 1, ComputeCycles: 1, Inputs: []string{"in0"}, Outputs: []string{"d10"}},
		},
		Clusters: []int{1, 1, 1},
	}
}
