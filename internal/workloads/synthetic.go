package workloads

import (
	"fmt"
	"math/rand"

	"cds/internal/app"
	"cds/internal/arch"
)

// SyntheticConfig controls the random workload generator. The generator
// exists for stress tests, property tests and scaling benchmarks: it
// produces applications with the same structural features as the paper's
// experiments (private inputs, intra-cluster intermediates, same-set
// shared data and shared results) in controllable proportions.
type SyntheticConfig struct {
	// Clusters and KernelsPerCluster set the partition shape.
	Clusters, KernelsPerCluster int
	// Iterations is the application iteration count.
	Iterations int
	// DataBytes is the nominal datum size; actual sizes vary by up to
	// 50% around it.
	DataBytes int
	// SharedDataFrac in [0,1] sets roughly how many clusters get a
	// same-set shared input table.
	SharedDataFrac float64
	// SharedResultFrac in [0,1] sets roughly how many clusters feed a
	// result to the next same-set cluster.
	SharedResultFrac float64
	// CtxWords and ComputeCycles configure each kernel.
	CtxWords, ComputeCycles int
}

// DefaultSynthetic returns a mid-sized configuration.
func DefaultSynthetic() SyntheticConfig {
	return SyntheticConfig{
		Clusters:          6,
		KernelsPerCluster: 2,
		Iterations:        12,
		DataBytes:         128,
		SharedDataFrac:    0.5,
		SharedResultFrac:  0.5,
		CtxWords:          160,
		ComputeCycles:     120,
	}
}

// Synthetic generates a random partitioned application from the config,
// deterministically for a given seed.
func Synthetic(cfg SyntheticConfig, seed int64) (*app.Partition, error) {
	if cfg.Clusters < 1 || cfg.KernelsPerCluster < 1 {
		return nil, fmt.Errorf("workloads: need at least one cluster and kernel, got %d/%d",
			cfg.Clusters, cfg.KernelsPerCluster)
	}
	rng := rand.New(rand.NewSource(seed))
	size := func() int {
		min := cfg.DataBytes / 2
		if min < 8 {
			min = 8
		}
		return min + rng.Intn(cfg.DataBytes)
	}
	b := app.NewBuilder(fmt.Sprintf("synthetic-%d", seed), cfg.Iterations)

	// Shared tables: one per FB set pair of clusters that rolled lucky.
	type sharedTable struct {
		name     string
		clusters []int
	}
	var tables []sharedTable
	for c := 0; c+2 < cfg.Clusters; c++ {
		if rng.Float64() < cfg.SharedDataFrac {
			name := fmt.Sprintf("tbl%d", c)
			b.Datum(name, size())
			tables = append(tables, sharedTable{name, []int{c, c + 2}})
		}
	}
	// Shared results: cluster c feeds cluster c+2 (same set).
	sharedResults := map[int]string{} // producing cluster -> datum
	for c := 0; c+2 < cfg.Clusters; c++ {
		if rng.Float64() < cfg.SharedResultFrac {
			name := fmt.Sprintf("sr%d", c)
			b.Datum(name, size())
			sharedResults[c] = name
		}
	}

	for c := 0; c < cfg.Clusters; c++ {
		for k := 0; k < cfg.KernelsPerCluster; k++ {
			b.Datum(fmt.Sprintf("d%d_%d", c, k), size())
		}
		b.Datum(fmt.Sprintf("out%d", c), size())
	}

	sizes := make([]int, cfg.Clusters)
	for c := 0; c < cfg.Clusters; c++ {
		sizes[c] = cfg.KernelsPerCluster
		for k := 0; k < cfg.KernelsPerCluster; k++ {
			kb := b.Kernel(fmt.Sprintf("k%d_%d", c, k),
				cfg.CtxWords, cfg.ComputeCycles)
			if k == 0 {
				kb.In(fmt.Sprintf("d%d_%d", c, 0))
				for _, t := range tables {
					for _, tc := range t.clusters {
						if tc == c {
							kb.In(t.name)
						}
					}
				}
				if sr, ok := sharedResults[c-2]; ok {
					kb.In(sr)
				}
			} else {
				// Chain through the cluster.
				kb.In(fmt.Sprintf("d%d_%d", c, k))
				kb.In(fmt.Sprintf("m%d_%d", c, k-1))
			}
			if k < cfg.KernelsPerCluster-1 {
				mid := fmt.Sprintf("m%d_%d", c, k)
				b.Datum(mid, size())
				kb.Out(mid)
			} else {
				kb.Out(fmt.Sprintf("out%d", c))
				if sr, ok := sharedResults[c]; ok {
					kb.Out(sr)
				}
			}
		}
	}
	a, err := b.Build()
	if err != nil {
		return nil, err
	}
	return app.NewPartition(a, 2, sizes...)
}

// SyntheticArch returns a machine sized so the synthetic workload is
// schedulable but contended: FB a little above the largest footprint, CM
// below two clusters' context demand.
func SyntheticArch(cfg SyntheticConfig) arch.Params {
	fb := cfg.DataBytes * (cfg.KernelsPerCluster + 4) * 2
	cm := cfg.CtxWords*cfg.KernelsPerCluster + cfg.CtxWords/2
	return m1With(fb, cm)
}
