package workloads

// The multi-tenant mix generator: seeded, random-access K-tenant
// scenarios for the tenant scheduler (internal/tenant) and its fuzzing
// oracles. Each scenario carves one base machine's FB set and Context
// Memory into K spatial quotas (summing within the machine by
// construction), attaches to every quota an independently generated
// application drawn from the same structure classes as the spec corpus,
// and rolls weights, priority bands and arrival cycles — the knobs the
// fairness invariants quantify over.
//
// Each tenant's spec carries its quota as the spec-level machine
// override, so the spec is self-contained: it builds and schedules
// standalone exactly as it will under the quota view, which is what the
// solo-equivalence oracle leans on.
//
// Like GenSpec and GenArrivals, the stream is pure in (seed, index).

import (
	"fmt"
	"math/rand"

	"cds/internal/arch"
	"cds/internal/spec"
)

// TenantScenario is one tenant of a generated mix.
type TenantScenario struct {
	// ID names the tenant within the mix ("t0", "t1", ...).
	ID string
	// Weight, Priority and Arrive are the scheduling knobs (see
	// tenant.Tenant).
	Weight, Priority, Arrive int
	// Spec is the tenant's application; its Arch override IS the
	// tenant's FB/CM quota, so the spec builds standalone.
	Spec *spec.Spec
}

// TenantMix is one generated K-tenant scenario.
type TenantMix struct {
	// Name is the scenario's canonical corpus name (see TenantMixName).
	Name string
	// Base is the shared machine; every tenant's quota was carved from
	// it, so the quotas sum within Base by construction.
	Base arch.Params
	// Tenants holds the K tenants in lane order.
	Tenants []TenantScenario
}

// TenantMixName is the canonical name of mix i of a seed's stream;
// diffuzz journals and reports key on it.
func TenantMixName(seed int64, index int) string {
	return fmt.Sprintf("tenants/s%d/%06d", seed, index)
}

// GenTenantMix generates tenant mix i of the seed's stream: 2..4 tenants
// on one machine. Every mix satisfies the spatial-partition precondition
// (quotas sum within the base machine); whether every tenant is
// schedulable under its quota is deliberately open — the infeasibility
// frontier is part of what the oracle sweeps.
func GenTenantMix(seed int64, index int) *TenantMix {
	sub := splitmix64(uint64(seed)*0x9e3779b97f4a7c15 + uint64(index)*0xda942042e4dd58b5 + 0x6a09e667f3bcc909)
	rng := rand.New(rand.NewSource(int64(sub)))

	name := TenantMixName(seed, index)
	k := 2 + rng.Intn(3) // 2..4 tenants

	// Base machine: an M1 with the FB/CM ladder scaled so that K quotas
	// of useful size fit. Quota floors (512 B FB, 128 CM words) keep the
	// corpus focused on scheduling behavior rather than trivially
	// impossible memories.
	fbLadder := []int{2 * arch.KiB, 4 * arch.KiB, 8 * arch.KiB}
	cmLadder := []int{512, 1024, 2048}
	base := arch.M1()
	base.FBSetBytes = fbLadder[rng.Intn(len(fbLadder))]
	base.CMWords = cmLadder[rng.Intn(len(cmLadder))]
	base.Name = fmt.Sprintf("M1[%s,%d]", arch.FormatSize(base.FBSetBytes), base.CMWords)

	// Carve quotas: start from an even split, then skew by moving a
	// random share from one tenant to another so unequal partitions are
	// covered too.
	fbQuota := make([]int, k)
	cmQuota := make([]int, k)
	for i := 0; i < k; i++ {
		fbQuota[i] = base.FBSetBytes / k
		cmQuota[i] = base.CMWords / k
	}
	if k > 1 && rng.Float64() < 0.6 {
		from, to := rng.Intn(k), rng.Intn(k)
		if from != to {
			moveFB := fbQuota[from] / (2 + rng.Intn(3))
			moveCM := cmQuota[from] / (2 + rng.Intn(3))
			if fbQuota[from]-moveFB >= 512 && cmQuota[from]-moveCM >= 128 {
				fbQuota[from] -= moveFB
				fbQuota[to] += moveFB
				cmQuota[from] -= moveCM
				cmQuota[to] += moveCM
			}
		}
	}

	mix := &TenantMix{Name: name, Base: base}
	classes := Classes()
	start := rng.Intn(len(classes))
	for i := 0; i < k; i++ {
		cls := classes[(start+i)%len(classes)]
		g := &genState{rng: rng, fb: fbQuota[i], cm: cmQuota[i], sp: &spec.Spec{
			Name:       fmt.Sprintf("%s/t%d-%s", name, i, cls),
			Iterations: 1 + rng.Intn(12),
			Arch:       &spec.Arch{FBSetBytes: fbQuota[i], CMWords: cmQuota[i]},
		}}
		g.genClass(cls)
		g.sp.PruneOrphanData()

		t := TenantScenario{
			ID:     fmt.Sprintf("t%d", i),
			Weight: 1 + rng.Intn(4),
			Spec:   g.sp,
		}
		if rng.Float64() < 0.15 {
			t.Priority = 1
		}
		if rng.Float64() < 0.3 {
			t.Arrive = int(rng.ExpFloat64() * 2000)
		}
		mix.Tenants = append(mix.Tenants, t)
	}
	return mix
}
