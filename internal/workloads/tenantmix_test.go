package workloads

import (
	"reflect"
	"testing"
)

// TestTenantMixDeterministic: GenTenantMix is pure in (seed, index) —
// regenerating any point in any order yields an identical mix.
func TestTenantMixDeterministic(t *testing.T) {
	const n = 24
	first := make([]*TenantMix, n)
	for i := 0; i < n; i++ {
		first[i] = GenTenantMix(7, i)
	}
	for i := n - 1; i >= 0; i-- {
		if again := GenTenantMix(7, i); !reflect.DeepEqual(again, first[i]) {
			t.Fatalf("mix %d differs between generation orders", i)
		}
	}
}

func TestTenantMixSeedsDiffer(t *testing.T) {
	if reflect.DeepEqual(GenTenantMix(1, 0), GenTenantMix(2, 0)) {
		t.Fatal("seeds 1 and 2 generated identical first mixes")
	}
}

// TestTenantMixInvariants: every mix satisfies the spatial-partition
// precondition by construction, names the tenants canonically and builds
// every tenant spec standalone.
func TestTenantMixInvariants(t *testing.T) {
	for i := 0; i < 60; i++ {
		mix := GenTenantMix(3, i)
		if mix.Name != TenantMixName(3, i) {
			t.Errorf("mix %d: name %q, want %q", i, mix.Name, TenantMixName(3, i))
		}
		if len(mix.Tenants) < 2 || len(mix.Tenants) > 4 {
			t.Errorf("mix %d: %d tenants, want 2..4", i, len(mix.Tenants))
		}
		sumFB, sumCM := 0, 0
		for ti, ts := range mix.Tenants {
			if ts.Spec.Arch == nil {
				t.Fatalf("mix %d tenant %d: no quota override on the spec", i, ti)
			}
			if ts.Spec.Arch.FBSetBytes < 512 || ts.Spec.Arch.CMWords < 128 {
				t.Errorf("mix %d tenant %s: quota %d/%d below the corpus floor",
					i, ts.ID, ts.Spec.Arch.FBSetBytes, ts.Spec.Arch.CMWords)
			}
			sumFB += ts.Spec.Arch.FBSetBytes
			sumCM += ts.Spec.Arch.CMWords
			if ts.Weight < 1 || ts.Arrive < 0 || ts.Priority < 0 {
				t.Errorf("mix %d tenant %s: bad knobs w=%d p=%d a=%d",
					i, ts.ID, ts.Weight, ts.Priority, ts.Arrive)
			}
			if _, _, err := ts.Spec.Build(); err != nil {
				t.Errorf("mix %d tenant %s: spec does not build: %v", i, ts.ID, err)
			}
		}
		if sumFB > mix.Base.FBSetBytes {
			t.Errorf("mix %d: FB quotas sum to %d, base holds %d", i, sumFB, mix.Base.FBSetBytes)
		}
		if sumCM > mix.Base.CMWords {
			t.Errorf("mix %d: CM quotas sum to %d, base holds %d", i, sumCM, mix.Base.CMWords)
		}
		if err := mix.Base.Validate(); err != nil {
			t.Errorf("mix %d: base machine invalid: %v", i, err)
		}
	}
}
