// Package workloads defines the twelve experiments of the paper's
// evaluation (Table 1 / Figure 6): the synthetic applications E1, E1*, E2
// and E3, the MPEG video-compression pipeline (two memory sizes), and the
// two Automatic Target Recognition pipelines ATR-SLD (three kernel
// schedules) and ATR-FI (three memory/schedule variants), plus a seeded
// synthetic generator for stress tests and benchmarks.
//
// The paper does not publish per-kernel sizes, so each workload is
// reconstructed from its description: the dependence structure (which data
// are shared within and among clusters) is faithful, and the sizes are
// calibrated so that the architecture-level anchors that ARE legible in
// the paper hold: the frame-buffer size and reuse factor RF of each row,
// Basic > DS > CDS ordering, DS == Basic where the paper reports 0%, and
// the MPEG memory floor (Basic cannot run in 1K, DS/CDS can).
package workloads

import (
	"fmt"

	"cds/internal/app"
	"cds/internal/arch"
)

// Experiment is one Table 1 row: a partitioned application plus the
// machine it runs on and the paper's published anchors.
type Experiment struct {
	// Name is the Table 1 row label.
	Name string
	// Part is the partitioned application.
	Part *app.Partition
	// Arch is the machine configuration (FB size from Table 1).
	Arch arch.Params
	// PaperRF is the reuse factor Table 1 reports (0 = illegible).
	PaperRF int
	// PaperDS and PaperCDS are the relative execution improvements (%)
	// Figure 6 reports for the Data Scheduler and the Complete Data
	// Scheduler (negative = illegible in the source).
	PaperDS, PaperCDS float64
}

// m1With returns an M1 with the given FB set size and context memory.
func m1With(fbBytes, cmWords int) arch.Params {
	p := arch.M1()
	p.FBSetBytes = fbBytes
	p.CMWords = cmWords
	return p
}

// All returns the twelve experiments in Table 1 order.
func All() []Experiment {
	return []Experiment{
		E1(), E1Star(), E2(), E3(),
		MPEG(), MPEGStar(),
		ATRSLD(0), ATRSLD(1), ATRSLD(2),
		ATRFI(0), ATRFI(1), ATRFI(2),
	}
}

// ByName returns the experiment with the given Table 1 label.
func ByName(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("workloads: unknown experiment %q", name)
}

// e1App is the synthetic application behind E1 and E1*: four clusters of
// two kernels. Each cluster filters a private input block against a
// coefficient table; the tables are shared between the two clusters of
// each FB set, and each set's first cluster feeds a partial result to the
// set's second cluster.
func e1App() *app.Partition {
	b := app.NewBuilder("E1", 24)
	// Shared coefficient tables (one per FB set) and shared partial
	// results.
	b.Datum("tbl02", 384) // used by clusters 0 and 2 (set 0)
	b.Datum("tbl13", 384) // used by clusters 1 and 3 (set 1)
	b.Datum("sr02", 128)  // cluster 0 -> cluster 2
	b.Datum("sr13", 128)  // cluster 1 -> cluster 3
	for c := 0; c < 4; c++ {
		b.Datum(fmt.Sprintf("in%d", c), 96)
		b.Datum(fmt.Sprintf("mid%d", c), 64)
		b.Datum(fmt.Sprintf("out%d", c), 96)
	}
	tbl := []string{"tbl02", "tbl13", "tbl02", "tbl13"}
	for c := 0; c < 4; c++ {
		k1 := b.Kernel(fmt.Sprintf("flt%d", c), 160, 120).
			In(fmt.Sprintf("in%d", c), tbl[c]).
			Out(fmt.Sprintf("mid%d", c))
		k2 := b.Kernel(fmt.Sprintf("acc%d", c), 160, 120).
			In(fmt.Sprintf("mid%d", c)).
			Out(fmt.Sprintf("out%d", c))
		switch c {
		case 0:
			k2.Out("sr02")
		case 1:
			k2.Out("sr13")
		case 2, 3:
			k1.In(fmt.Sprintf("sr%d%d", c-2, c))
		}
	}
	return app.MustPartition(b.MustBuild(), 2, 2, 2, 2, 2)
}

// E1 is the first synthetic experiment at FB = 1K: the footprint allows
// only RF = 1, so the Data Scheduler gains nothing over Basic; the
// Complete Data Scheduler still wins by retaining the shared tables and
// partial results (paper: 0% vs 19%).
func E1() Experiment {
	return Experiment{
		Name:    "E1",
		Part:    e1App(),
		Arch:    m1With(1*arch.KiB, 512),
		PaperRF: 1, PaperDS: 0, PaperCDS: 19,
	}
}

// E1Star is E1 with FB = 2K: RF rises to 3 and both schedulers improve
// (paper: 38% vs 58%).
func E1Star() Experiment {
	return Experiment{
		Name:    "E1*",
		Part:    e1App(),
		Arch:    m1With(2*arch.KiB, 512),
		PaperRF: 3, PaperDS: 38, PaperCDS: 58,
	}
}

// E2 is a longer pipeline with little inter-cluster sharing: DS and CDS
// land close together (paper: 44% vs 48% at RF = 3, FB = 2K).
func E2() Experiment {
	b := app.NewBuilder("E2", 24)
	// Six clusters, mostly a linear pipeline across sets (cross-set
	// results cannot be retained), with one same-set shared table.
	b.Datum("tblA", 256) // clusters 0 and 4 (set 0)
	for c := 0; c < 6; c++ {
		b.Datum(fmt.Sprintf("in%d", c), 224)
		b.Datum(fmt.Sprintf("mid%d", c), 112)
		b.Datum(fmt.Sprintf("out%d", c), 64)
	}
	for c := 0; c < 6; c++ {
		k1 := b.Kernel(fmt.Sprintf("s%da", c), 176, 130).
			In(fmt.Sprintf("in%d", c)).
			Out(fmt.Sprintf("mid%d", c))
		b.Kernel(fmt.Sprintf("s%db", c), 176, 130).
			In(fmt.Sprintf("mid%d", c)).
			Out(fmt.Sprintf("out%d", c))
		if c == 0 || c == 4 {
			k1.In("tblA")
		}
		if c > 0 {
			// Pipeline: consume the previous cluster's output
			// (adjacent clusters sit on different sets).
			k1.In(fmt.Sprintf("out%d", c-1))
		}
	}
	return Experiment{
		Name:    "E2",
		Part:    app.MustPartition(b.MustBuild(), 2, 2, 2, 2, 2, 2, 2),
		Arch:    m1With(2*arch.KiB, 512),
		PaperRF: 3, PaperDS: 44, PaperCDS: 48,
	}
}

// E3 is a small-data, context-heavy application: a large RF (paper: 11 at
// FB = 3K) massively cuts context reloads (paper: 67% vs 76%).
func E3() Experiment {
	b := app.NewBuilder("E3", 66)
	b.Datum("coef", 112) // shared by clusters 0 and 2
	for c := 0; c < 4; c++ {
		b.Datum(fmt.Sprintf("in%d", c), 64)
		b.Datum(fmt.Sprintf("out%d", c), 48)
	}
	for c := 0; c < 4; c++ {
		k := b.Kernel(fmt.Sprintf("t%d", c), 256, 80).
			In(fmt.Sprintf("in%d", c)).
			Out(fmt.Sprintf("out%d", c))
		if c == 0 || c == 2 {
			k.In("coef")
		}
		if c == 2 {
			k.In("out0") // partial result reused on set 0
		}
	}
	return Experiment{
		Name:    "E3",
		Part:    app.MustPartition(b.MustBuild(), 2, 1, 1, 1, 1),
		Arch:    m1With(3*arch.KiB, 512),
		PaperRF: 11, PaperDS: 67, PaperCDS: 76,
	}
}

// mpegApp models the macroblock loop of an MPEG encoder on MorphoSys (the
// application MorphoSys was demonstrated on): motion estimation against a
// reference window, DCT + quantization of the residual, and the
// reconstruction path (dequantize + IDCT) whose output the next stage
// consumes. The reference window is shared by the ME and reconstruction
// clusters (same set); the quantization tables are shared by the quantize
// and dequantize clusters (same set).
func mpegApp() *app.Partition {
	b := app.NewBuilder("MPEG", 30)
	b.Datum("curMB", 160)  // current macroblock (cluster 0)
	b.Datum("refWin", 384) // reference window: clusters 0 and 2 (set 0)
	b.Datum("ctbl", 128)   // quant/coding tables: clusters 1 and 3 (set 1)
	b.Datum("mv", 64)      // motion vectors: cluster 0 -> cluster 2 (set 0)
	b.Datum("resid", 160)  // residual: cluster 0 -> cluster 1 (cross set)
	b.Datum("coef", 224)   // DCT coefficients (intermediate, cluster 1)
	b.Datum("qcoef", 192)  // quantized coefficients: cluster 1 -> clusters 2 (cross) and 3 (same set)
	b.Datum("dq", 128)     // dequantized coefficients (intermediate, cluster 2)
	b.Datum("pix", 128)    // inverse-transformed residual (intermediate, cluster 2)
	b.Datum("recon", 192)  // reconstructed block (final)
	b.Datum("bits", 96)    // entropy-coded payload (final)

	// Cluster 0 (set 0): motion estimation + compensation. Both
	// kernels read the current macroblock and the reference window:
	// under the Basic Scheduler that means duplicate transfers.
	b.Kernel("sad", 224, 200).In("curMB", "refWin").Out("mv")
	b.Kernel("mc", 160, 120).In("curMB", "refWin", "mv").Out("resid")
	// Cluster 1 (set 1): transform + quantization.
	b.Kernel("dct", 224, 150).In("resid").Out("coef")
	b.Kernel("quant", 128, 80).In("coef", "ctbl").Out("qcoef")
	// Cluster 2 (set 0): reconstruction path; reuses the reference
	// window and motion vectors produced by cluster 0.
	b.Kernel("dequant", 128, 80).In("qcoef").Out("dq")
	b.Kernel("idct", 224, 150).In("dq").Out("pix")
	b.Kernel("recon", 192, 130).In("pix", "refWin", "mv").Out("recon")
	// Cluster 3 (set 1): entropy coding; shares the coding tables with
	// the quantizer and re-reads the quantized coefficients.
	b.Kernel("vlc", 96, 100).In("qcoef", "ctbl").Out("bits")
	return app.MustPartition(b.MustBuild(), 2, 2, 2, 3, 1)
}

// MPEG is the encoder at FB = 2K (paper: RF = 2, 30% vs 45%). The paper
// also reports that the Basic Scheduler cannot execute MPEG at all with a
// 1K frame buffer while DS and CDS can — see MPEGFloor.
func MPEG() Experiment {
	return Experiment{
		Name:    "MPEG",
		Part:    mpegApp(),
		Arch:    m1With(2*arch.KiB, 512),
		PaperRF: 2, PaperDS: 30, PaperCDS: 45,
	}
}

// MPEGStar is the encoder at FB = 3K (paper: RF = 4, 35% vs 50%).
func MPEGStar() Experiment {
	return Experiment{
		Name:    "MPEG*",
		Part:    mpegApp(),
		Arch:    m1With(3*arch.KiB, 512),
		PaperRF: 4, PaperDS: 35, PaperCDS: 50,
	}
}

// MPEGFloor returns the MPEG experiment at FB = 1K, the configuration the
// paper uses to show the Basic Scheduler fails while DS and CDS run.
func MPEGFloor() Experiment {
	return Experiment{
		Name:    "MPEG@1K",
		Part:    mpegApp(),
		Arch:    m1With(1*arch.KiB, 512),
		PaperRF: 1, PaperDS: -1, PaperCDS: -1,
	}
}

// atrSLDApp models ATR second-level detection: a bank of target templates
// is correlated against a large image region. The template bank is the
// big shared datum; schedule determines which clusters share it on a set.
// sizes are large (the paper reports a 14K working set at FB = 8K, RF=1).
func atrSLDApp(schedule int) *app.Partition {
	b := app.NewBuilder(fmt.Sprintf("ATR-SLD(%d)", schedule), 16)
	b.Datum("image", 2048) // region of interest, shared by every correlator
	b.Datum("bankA", 2048) // template bank A: even correlators
	b.Datum("bankB", 2048) // template bank B: odd correlators
	for c := 0; c < 8; c++ {
		b.Datum(fmt.Sprintf("corr%d", c), 576)
		b.Datum(fmt.Sprintf("peaks%d", c), 128)
	}
	for c := 0; c < 8; c++ {
		bank := "bankA"
		if c%2 == 1 {
			bank = "bankB"
		}
		b.Kernel(fmt.Sprintf("xcorr%d", c), 256, 300).
			In("image", bank).
			Out(fmt.Sprintf("corr%d", c))
		b.Kernel(fmt.Sprintf("peak%d", c), 128, 100).
			In(fmt.Sprintf("corr%d", c)).
			Out(fmt.Sprintf("peaks%d", c))
	}
	a := b.MustBuild()
	switch schedule {
	case 1:
		// ATR-SLD*: one correlator+detector pair per cluster. No
		// kernel pair inside a cluster shares inputs, so the Data
		// Scheduler gains nothing (RF stays 1); retention of the
		// template bank and image across the four same-set clusters
		// gives the Complete Data Scheduler a large win.
		return app.MustPartition(a, 2, 2, 2, 2, 2, 2, 2, 2, 2)
	case 2:
		// ATR-SLD**: uneven schedule mixing both regimes.
		return app.MustPartition(a, 2, 4, 4, 2, 2, 2, 2)
	default:
		// ATR-SLD: four clusters of two correlator pairs each; the
		// correlators inside a cluster duplicate their template and
		// image transfers under the Basic Scheduler.
		return app.MustPartition(a, 2, 4, 4, 4, 4)
	}
}

// ATRSLD returns one of the paper's three ATR-SLD kernel schedules at a
// fixed FB = 8K (paper: 15%/32%, 0%/60%, 13%/27%; all RF = 1).
func ATRSLD(schedule int) Experiment {
	names := []string{"ATR-SLD", "ATR-SLD*", "ATR-SLD**"}
	ds := []float64{15, 0, 13}
	cds := []float64{32, 60, 27}
	return Experiment{
		Name:    names[schedule],
		Part:    atrSLDApp(schedule),
		Arch:    m1With(8*arch.KiB, 768),
		PaperRF: 1, PaperDS: ds[schedule], PaperCDS: cds[schedule],
	}
}

// atrFIApp models the ATR focus-of-attention / indexing stage: small
// chips are filtered and thresholded; a detection table is shared.
func atrFIApp() *app.Partition {
	b := app.NewBuilder("ATR-FI", 40)
	b.Datum("chip", 160)
	b.Datum("mask", 96) // shared by clusters 0 and 2
	b.Datum("flt", 96)
	b.Datum("scored", 64) // cluster 1 -> cluster 3 (set 1)
	b.Datum("det", 48)
	b.Datum("idx", 32)
	b.Kernel("prefilter", 176, 100).In("chip", "mask").Out("flt")
	b.Kernel("score", 176, 100).In("flt").Out("scored")
	b.Kernel("detect", 144, 80).In("flt", "mask").Out("det")
	b.Kernel("index", 96, 60).In("scored", "det").Out("idx")
	return app.MustPartition(b.MustBuild(), 2, 1, 1, 1, 1)
}

// ATRFI returns one of the paper's three ATR-FI variants: the base run at
// FB = 1K (RF = 2, 26%/30%), a large-memory run at FB = 2K (RF = 5), and
// an alternative schedule at FB = 1K (33%/37%).
func ATRFI(variant int) Experiment {
	switch variant {
	case 1:
		return Experiment{
			Name:    "ATR-FI*",
			Part:    atrFIApp(),
			Arch:    m1With(2*arch.KiB, 512),
			PaperRF: 5, PaperDS: 61, PaperCDS: 61,
		}
	case 2:
		// Alternative kernel schedule: prefilter+score fused.
		p := atrFIApp()
		alt := app.MustPartition(p.App, 2, 2, 1, 1)
		return Experiment{
			Name:    "ATR-FI**",
			Part:    alt,
			Arch:    m1With(1*arch.KiB, 512),
			PaperRF: 2, PaperDS: 33, PaperCDS: 37,
		}
	default:
		return Experiment{
			Name:    "ATR-FI",
			Part:    atrFIApp(),
			Arch:    m1With(1*arch.KiB, 512),
			PaperRF: 2, PaperDS: 26, PaperCDS: 30,
		}
	}
}

// RankingAblation returns a workload constructed so the retention
// candidate RANKING decides the outcome: two shared objects compete for
// frame-buffer space that can hold only one of them.
//
//   - "hot" (300 B) is read by three same-set clusters: TF = 300*2/TDS,
//     retention avoids 600 B per iteration;
//   - "cold" (500 B) is read by two same-set clusters: TF = 500*1/TDS,
//     retention avoids 500 B per iteration;
//   - a pass-through cluster with a large private input sits inside both
//     retention spans, so pinning BOTH overflows the FB while pinning
//     either one alone fits.
//
// The paper's TF ranking keeps "hot" (more transfers avoided); ranking by
// raw size keeps "cold". Used by BenchmarkAblationRanking and the core
// retention tests.
func RankingAblation() Experiment {
	b := app.NewBuilder("ranking", 8)
	// Declare cold first so discovery-order (FIFO) ranking also picks
	// the inferior candidate.
	b.Datum("cold", 500) // clusters 2 and 8 (set 0)
	b.Datum("hot", 300)  // clusters 0, 6 and 10 (set 0)
	b.Datum("bigP", 400) // private input of the pass-through cluster 4
	for c := 0; c < 12; c++ {
		if c != 4 {
			b.Datum(fmt.Sprintf("p%d", c), 100)
		}
		b.Datum(fmt.Sprintf("o%d", c), 60)
	}
	share := map[int]string{0: "hot", 6: "hot", 10: "hot", 2: "cold", 8: "cold"}
	for c := 0; c < 12; c++ {
		private := fmt.Sprintf("p%d", c)
		if c == 4 {
			private = "bigP" // the pass-through cluster's big input
		}
		k := b.Kernel(fmt.Sprintf("k%d", c), 96, 60).
			In(private).
			Out(fmt.Sprintf("o%d", c))
		if s, ok := share[c]; ok {
			k.In(s)
		}
	}
	sizes := make([]int, 12)
	for i := range sizes {
		sizes[i] = 1
	}
	return Experiment{
		Name:    "ranking-ablation",
		Part:    app.MustPartition(b.MustBuild(), 2, sizes...),
		Arch:    m1With(1024, 512),
		PaperRF: 1, PaperDS: -1, PaperCDS: -1,
	}
}
