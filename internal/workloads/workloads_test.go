package workloads

import (
	"errors"
	"testing"

	"cds/internal/core"
	"cds/internal/kernels"
	"cds/internal/sim"
)

func kernelsLibrary() map[string]*kernels.Kernel { return kernels.Library() }

// runAll schedules an experiment under all three policies and returns the
// timing results (basic may be nil with an InfeasibleError).
func runAll(t *testing.T, e Experiment) (basic, ds, cdsRes *sim.Result, sBasicErr error, sDS, sCDS *core.Schedule) {
	t.Helper()
	run := func(s core.Scheduler) (*sim.Result, *core.Schedule, error) {
		sched, err := s.Schedule(e.Arch, e.Part)
		if err != nil {
			return nil, nil, err
		}
		r, err := sim.Run(sched)
		if err != nil {
			t.Fatalf("%s/%s: %v", e.Name, s.Name(), err)
		}
		return r, sched, nil
	}
	var err error
	basic, _, sBasicErr = run(core.Basic{})
	ds, sDS, err = run(core.DataScheduler{})
	if err != nil {
		t.Fatalf("%s/ds: %v", e.Name, err)
	}
	cdsRes, sCDS, err = run(core.CompleteDataScheduler{})
	if err != nil {
		t.Fatalf("%s/cds: %v", e.Name, err)
	}
	return basic, ds, cdsRes, sBasicErr, sDS, sCDS
}

func TestAllExperimentsValid(t *testing.T) {
	exps := All()
	if len(exps) != 12 {
		t.Fatalf("All() = %d experiments, want 12 (Table 1)", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.Name] {
			t.Errorf("duplicate experiment %q", e.Name)
		}
		seen[e.Name] = true
		if err := e.Part.Validate(); err != nil {
			t.Errorf("%s: invalid partition: %v", e.Name, err)
		}
		if err := e.Arch.Validate(); err != nil {
			t.Errorf("%s: invalid arch: %v", e.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	e, err := ByName("ATR-SLD*")
	if err != nil || e.Name != "ATR-SLD*" {
		t.Errorf("ByName(ATR-SLD*) = %v, %v", e.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

// TestSchedulerOrderingOnAllExperiments is the headline Figure 6 shape:
// CDS beats DS beats (or ties) Basic on every experiment.
func TestSchedulerOrderingOnAllExperiments(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			basic, ds, cdsRes, basicErr, _, sCDS := runAll(t, e)
			if basicErr != nil {
				t.Fatalf("basic unexpectedly infeasible: %v", basicErr)
			}
			if ds.TotalCycles > basic.TotalCycles {
				t.Errorf("DS (%d) slower than Basic (%d)", ds.TotalCycles, basic.TotalCycles)
			}
			if cdsRes.TotalCycles > ds.TotalCycles {
				t.Errorf("CDS (%d) slower than DS (%d)", cdsRes.TotalCycles, ds.TotalCycles)
			}
			if cdsRes.TotalCycles >= basic.TotalCycles {
				t.Errorf("CDS (%d) does not beat Basic (%d)", cdsRes.TotalCycles, basic.TotalCycles)
			}
			// CDS data traffic is never higher than DS's.
			if cdsRes.LoadBytes > ds.LoadBytes || cdsRes.StoreBytes > ds.StoreBytes {
				t.Errorf("CDS moves more data than DS: %d/%d vs %d/%d",
					cdsRes.LoadBytes, cdsRes.StoreBytes, ds.LoadBytes, ds.StoreBytes)
			}
			_ = sCDS
		})
	}
}

// TestPaperRFMatches pins the reuse factors that are legible in Table 1.
func TestPaperRFMatches(t *testing.T) {
	for _, e := range All() {
		if e.PaperRF <= 0 {
			continue
		}
		s, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part)
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if s.RF != e.PaperRF {
			t.Errorf("%s: RF = %d, paper says %d", e.Name, s.RF, e.PaperRF)
		}
	}
}

// TestZeroDSAnchors pins the rows where the paper reports the Data
// Scheduler gaining nothing (E1 at 1K, ATR-SLD*), and checks CDS still
// gains there — the paper's headline argument.
func TestZeroDSAnchors(t *testing.T) {
	for _, name := range []string{"E1", "ATR-SLD*"} {
		e, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		basic, ds, cdsRes, basicErr, _, _ := runAll(t, e)
		if basicErr != nil {
			t.Fatalf("%s: %v", name, basicErr)
		}
		if ds.TotalCycles != basic.TotalCycles {
			t.Errorf("%s: DS (%d) != Basic (%d); paper reports 0%% improvement",
				name, ds.TotalCycles, basic.TotalCycles)
		}
		imp := sim.Improvement(basic, cdsRes)
		if imp < 10 {
			t.Errorf("%s: CDS improvement = %.1f%%, want a clear gain (paper: %.0f%%)",
				name, imp, e.PaperCDS)
		}
	}
}

// TestBiggerFBHelps pins the paper's memory-scaling story: the starred
// variants (larger FB) achieve strictly higher RF and at-least-as-good
// improvements.
func TestBiggerFBHelps(t *testing.T) {
	pairs := [][2]string{{"E1", "E1*"}, {"MPEG", "MPEG*"}, {"ATR-FI", "ATR-FI*"}}
	for _, pair := range pairs {
		small, err := ByName(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		big, err := ByName(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		sSmall, err := (core.CompleteDataScheduler{}).Schedule(small.Arch, small.Part)
		if err != nil {
			t.Fatal(err)
		}
		sBig, err := (core.CompleteDataScheduler{}).Schedule(big.Arch, big.Part)
		if err != nil {
			t.Fatal(err)
		}
		if sBig.RF <= sSmall.RF {
			t.Errorf("%s -> %s: RF %d -> %d, want an increase", pair[0], pair[1], sSmall.RF, sBig.RF)
		}
		bS, dS, cS, _, _, _ := runAll(t, small)
		bB, dB, cB, _, _, _ := runAll(t, big)
		if sim.Improvement(bB, dB) < sim.Improvement(bS, dS) {
			t.Errorf("%s -> %s: DS improvement decreased", pair[0], pair[1])
		}
		if sim.Improvement(bB, cB) < sim.Improvement(bS, cS) {
			t.Errorf("%s -> %s: CDS improvement decreased", pair[0], pair[1])
		}
	}
}

// TestMPEGMemoryFloor pins the paper's FB-floor result: the Basic
// Scheduler cannot execute MPEG with a 1K frame buffer; DS and CDS can.
func TestMPEGMemoryFloor(t *testing.T) {
	e := MPEGFloor()
	_, err := (core.Basic{}).Schedule(e.Arch, e.Part)
	var ie *core.InfeasibleError
	if !errors.As(err, &ie) {
		t.Fatalf("basic on MPEG@1K: err = %v, want InfeasibleError", err)
	}
	if _, err := (core.DataScheduler{}).Schedule(e.Arch, e.Part); err != nil {
		t.Errorf("DS on MPEG@1K failed: %v", err)
	}
	if _, err := (core.CompleteDataScheduler{}).Schedule(e.Arch, e.Part); err != nil {
		t.Errorf("CDS on MPEG@1K failed: %v", err)
	}
}

// TestNoSplitsAndRegularAllocation pins the paper's section 6 claim: on
// every experiment the allocator places every datum unsplit, with regular
// addresses across iterations.
func TestNoSplitsAndRegularAllocation(t *testing.T) {
	for _, e := range All() {
		for _, sched := range []core.Scheduler{core.Basic{}, core.DataScheduler{}, core.CompleteDataScheduler{}} {
			s, err := sched.Schedule(e.Arch, e.Part)
			if err != nil {
				t.Fatalf("%s/%s: %v", e.Name, sched.Name(), err)
			}
			rep, err := core.Allocate(s, false) // splitting disabled: must still succeed
			if err != nil {
				t.Fatalf("%s/%s: allocation failed without splitting: %v", e.Name, sched.Name(), err)
			}
			if rep.Splits != 0 {
				t.Errorf("%s/%s: %d splits", e.Name, sched.Name(), rep.Splits)
			}
			if !rep.Regular {
				t.Errorf("%s/%s: irregular allocation: %v", e.Name, sched.Name(), rep.IrregularObjects)
			}
			for set, peak := range rep.PeakUsed {
				if peak > e.Arch.FBSetBytes {
					t.Errorf("%s/%s: set %d peak %d exceeds FB %d",
						e.Name, sched.Name(), set, peak, e.Arch.FBSetBytes)
				}
			}
		}
	}
}

// TestATRSLDVariantsPattern pins the kernel-schedule sensitivity of
// ATR-SLD: the one-pair-per-cluster schedule (*) zeroes the DS gain but
// maximizes the CDS gain; the uneven schedule (**) sits below the base
// for CDS.
func TestATRSLDVariantsPattern(t *testing.T) {
	imp := func(name string) (float64, float64) {
		e, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		basic, ds, cdsRes, basicErr, _, _ := runAll(t, e)
		if basicErr != nil {
			t.Fatal(basicErr)
		}
		return sim.Improvement(basic, ds), sim.Improvement(basic, cdsRes)
	}
	baseDS, baseCDS := imp("ATR-SLD")
	starDS, starCDS := imp("ATR-SLD*")
	dd, dcds := imp("ATR-SLD**")
	if starDS != 0 {
		t.Errorf("ATR-SLD* DS improvement = %.1f%%, paper reports 0%%", starDS)
	}
	if !(starCDS > baseCDS && baseCDS > dcds) {
		t.Errorf("CDS ordering across schedules: * (%.1f) > base (%.1f) > ** (%.1f) expected",
			starCDS, baseCDS, dcds)
	}
	if baseDS <= dd-10 || baseDS == 0 {
		t.Errorf("base DS (%.1f) should be a moderate nonzero gain (** is %.1f)", baseDS, dd)
	}
}

func TestSynthetic(t *testing.T) {
	cfg := DefaultSynthetic()
	p, err := Synthetic(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Clusters) != cfg.Clusters {
		t.Errorf("clusters = %d, want %d", len(p.Clusters), cfg.Clusters)
	}
	// Determinism.
	p2, err := Synthetic(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.App.TotalDataBytes() != p2.App.TotalDataBytes() {
		t.Error("same seed produced different apps")
	}
	p3, err := Synthetic(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.App.TotalDataBytes() == p3.App.TotalDataBytes() {
		t.Error("different seeds produced identical apps (suspicious)")
	}
}

func TestSyntheticSchedulable(t *testing.T) {
	cfg := DefaultSynthetic()
	for seed := int64(0); seed < 10; seed++ {
		p, err := Synthetic(cfg, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pa := SyntheticArch(cfg)
		for _, sched := range []core.Scheduler{core.DataScheduler{}, core.CompleteDataScheduler{}} {
			s, err := sched.Schedule(pa, p)
			if err != nil {
				var ie *core.InfeasibleError
				if errors.As(err, &ie) {
					continue // tight configs may not fit; that is fine
				}
				t.Fatalf("seed %d/%s: %v", seed, sched.Name(), err)
			}
			if _, err := core.Allocate(s, true); err != nil {
				t.Fatalf("seed %d/%s: allocation: %v", seed, sched.Name(), err)
			}
			if _, err := sim.Run(s); err != nil {
				t.Fatalf("seed %d/%s: sim: %v", seed, sched.Name(), err)
			}
		}
	}
}

func TestSyntheticRejectsBadConfig(t *testing.T) {
	if _, err := Synthetic(SyntheticConfig{}, 0); err == nil {
		t.Error("empty config accepted")
	}
}

func TestRankingAblationDiscriminates(t *testing.T) {
	e := RankingAblation()
	run := func(rank core.RankFunc) *core.Schedule {
		t.Helper()
		s, err := (core.CompleteDataScheduler{Ranking: rank}).Schedule(e.Arch, e.Part)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	tf := run(core.RankTF)
	bySize := run(core.RankBySize)
	fifo := run(core.RankFIFO)

	names := func(s *core.Schedule) []string {
		var out []string
		for _, r := range s.Retained {
			out = append(out, r.Name)
		}
		return out
	}
	if len(tf.Retained) != 1 || tf.Retained[0].Name != "hot" {
		t.Errorf("TF ranking kept %v, want [hot]", names(tf))
	}
	if len(bySize.Retained) != 1 || bySize.Retained[0].Name != "cold" {
		t.Errorf("size ranking kept %v, want [cold]", names(bySize))
	}
	if len(fifo.Retained) != 1 || fifo.Retained[0].Name != "cold" {
		t.Errorf("FIFO ranking kept %v, want [cold] (declared first)", names(fifo))
	}
	// The paper's ranking must avoid strictly more traffic.
	if tf.AvoidedBytesPerIter() <= bySize.AvoidedBytesPerIter() {
		t.Errorf("TF avoided %d B/iter, size ranking %d: TF should win",
			tf.AvoidedBytesPerIter(), bySize.AvoidedBytesPerIter())
	}
	if tf.TotalLoadBytes() >= bySize.TotalLoadBytes() {
		t.Errorf("TF loads %d, size ranking %d: TF should move less data",
			tf.TotalLoadBytes(), bySize.TotalLoadBytes())
	}
}

func TestFromLibrary(t *testing.T) {
	part, pa, err := FromLibrary(12)
	if err != nil {
		t.Fatal(err)
	}
	if err := part.Validate(); err != nil {
		t.Fatal(err)
	}
	// The scheduling metadata must trace back to the functional kernel
	// library exactly.
	lib := kernelsLibrary()
	for _, k := range part.App.Kernels {
		fk, ok := lib[k.Name]
		if !ok {
			t.Fatalf("kernel %q not in the library", k.Name)
		}
		if k.ContextWords != fk.ContextWords() {
			t.Errorf("%s: context words %d != library %d", k.Name, k.ContextWords, fk.ContextWords())
		}
		if got := part.App.SizeOf(k.Inputs[0]); got != 2*fk.InWords {
			t.Errorf("%s: input bytes %d != 2x library words %d", k.Name, got, fk.InWords)
		}
	}
	// And the workload must schedule end to end under all three policies.
	for _, sched := range []core.Scheduler{core.Basic{}, core.DataScheduler{}, core.CompleteDataScheduler{}} {
		s, err := sched.Schedule(pa, part)
		if err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if _, err := core.Allocate(s, false); err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
		if _, err := sim.Run(s); err != nil {
			t.Fatalf("%s: %v", sched.Name(), err)
		}
	}
}
