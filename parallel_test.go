package cds

// Tests for the concurrent scheduling engine: the parallel CompareAll
// must be bit-identical to running the three schedulers serially, and
// sharing a partition (plus its memoized analysis) across many
// goroutines must be race-free — run these under `go test -race`.

import (
	"sync"
	"testing"

	"cds/internal/core"
	"cds/internal/workloads"
)

// TestCompareAllMatchesSerial checks the fanned-out CompareAll computes
// exactly what three serial Run calls compute, on every Table 1 row.
func TestCompareAllMatchesSerial(t *testing.T) {
	for _, e := range workloads.All() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			cmp, err := CompareAll(e.Arch, e.Part)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []SchedulerKind{Basic, DS, CDS} {
				want, err := Run(k, e.Arch, e.Part)
				if err != nil {
					t.Fatalf("%s: %v", k, err)
				}
				var got *Result
				switch k {
				case Basic:
					got = cmp.Basic
				case DS:
					got = cmp.DS
				case CDS:
					got = cmp.CDS
				}
				if got.Timing.TotalCycles != want.Timing.TotalCycles {
					t.Errorf("%s: parallel %d cycles, serial %d", k,
						got.Timing.TotalCycles, want.Timing.TotalCycles)
				}
				if got.Schedule.TotalLoadBytes() != want.Schedule.TotalLoadBytes() ||
					got.Schedule.TotalCtxWords() != want.Schedule.TotalCtxWords() {
					t.Errorf("%s: parallel and serial schedules move different traffic", k)
				}
			}
		})
	}
}

// TestCompareAllConcurrent hammers one partition from many goroutines:
// every comparison must come back identical, and under -race this
// proves Schedule, Info and arch.Params are safe to share read-only.
func TestCompareAllConcurrent(t *testing.T) {
	e := workloads.MPEG()
	ref, err := CompareAll(e.Arch, e.Part)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	cmps := make([]*Comparison, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cmps[g], errs[g] = CompareAll(e.Arch, e.Part)
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if cmps[g].ImprovementCDS != ref.ImprovementCDS ||
			cmps[g].ImprovementDS != ref.ImprovementDS ||
			cmps[g].RF != ref.RF || cmps[g].DTBytes != ref.DTBytes {
			t.Errorf("goroutine %d: diverging comparison", g)
		}
	}
	// The three runs share ONE memoized analysis.
	if ref.Basic.Schedule.Info != ref.DS.Schedule.Info || ref.DS.Schedule.Info != ref.CDS.Schedule.Info {
		t.Error("schedulers did not share the memoized analysis Info")
	}
}

// TestCompareAllBasicInfeasibleParallel keeps the memory-floor contract
// under the fan-out: a Basic failure is reported in BasicErr, not as a
// CompareAll error, with 100% improvements.
func TestCompareAllBasicInfeasibleParallel(t *testing.T) {
	e := workloads.MPEGFloor()
	cmp, err := CompareAll(e.Arch, e.Part)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.BasicErr == nil {
		t.Fatal("basic unexpectedly feasible at the MPEG floor")
	}
	if cmp.Basic != nil {
		t.Error("Basic result set despite infeasibility")
	}
	if cmp.ImprovementDS != 100 || cmp.ImprovementCDS != 100 {
		t.Errorf("floor improvements = %v/%v, want 100/100", cmp.ImprovementDS, cmp.ImprovementCDS)
	}
}

// TestScheduleConcurrentRFSweep exercises the parallel RF sweep from
// concurrent callers on a shared partition (race coverage for the
// nested fan-out: CompareAll-level callers over a sweeping scheduler).
func TestScheduleConcurrentRFSweep(t *testing.T) {
	e := workloads.MPEG()
	var wg sync.WaitGroup
	rfs := make([]int, 6)
	for g := range rfs {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := (core.CompleteDataScheduler{RF: core.RFSweep}).Schedule(e.Arch, e.Part)
			if err != nil {
				t.Error(err)
				return
			}
			rfs[g] = s.RF
		}(g)
	}
	wg.Wait()
	for g := 1; g < len(rfs); g++ {
		if rfs[g] != rfs[0] {
			t.Fatalf("concurrent sweeps settled on different RFs: %v", rfs)
		}
	}
}
