package cds

// Result caching for the facade. CompareAllCtx is a pure function of
// (arch.Params, *Part): the schedulers, the allocator replay and the
// simulator read nothing but the spec, and a finished Comparison is
// immutable. That makes full comparisons safe to memoize under the
// content fingerprint — design-space sweeps, batch grids and schedd
// requests that re-pose a solved point get the answer in O(hash).
//
// Only clean outcomes are kept. Anything carrying an error — a
// cancellation, a panic surfaced by conc, a degraded comparison — is
// handed to its concurrent sharers and then dropped, so a later call
// recomputes instead of replaying a transient failure.

import (
	"sync/atomic"

	"cds/internal/rescache"
)

// comparisonCache memoizes CompareAllCtx outcomes. 512 entries hold a
// full three-generation × all-workloads × 58-point FB sweep with room
// to spare.
var comparisonCache = rescache.New("cds.compare_all", 512)

// compareTag versions the cached computation: bump it when the
// scheduler pipeline changes meaning without a spec change.
const compareTag = "compare-all/v1"

// cachingEnabled gates CompareAllCtx's memoization without disabling
// the process-wide rescache switch (benchmarks flip both
// independently).
var cachingEnabled atomic.Bool

func init() { cachingEnabled.Store(true) }

// SetResultCaching turns CompareAllCtx result caching on or off and
// returns the previous setting. On by default; the golden tests and
// uncached benchmarks switch it off to exercise the raw pipeline.
func SetResultCaching(on bool) (prev bool) { return cachingEnabled.Swap(on) }

// ComparisonKey returns the content fingerprint CompareAllCtx caches
// under: a deterministic hash of every arch parameter and the
// partition's canonical spec.
func ComparisonKey(pa Arch, part *Part) rescache.Key {
	return rescache.KeyOf(pa, part, compareTag)
}

// compareOutcome is the cached value type: the comparison plus the
// error handed to concurrent sharers of one in-flight computation.
// Only err == nil outcomes stay resident.
type compareOutcome struct {
	cmp *Comparison
	err error
}

// LookupComparison returns the memoized comparison for the spec if a
// clean one is resident, without scheduling anything. Serving layers
// use it to answer requests before paying for queue admission.
func LookupComparison(pa Arch, part *Part) (*Comparison, bool) {
	if !cachingEnabled.Load() {
		return nil, false
	}
	v, ok := comparisonCache.Get(ComparisonKey(pa, part))
	if !ok {
		return nil, false
	}
	return v.(compareOutcome).cmp, true
}

// LookupComparisonByKey is LookupComparison addressed by the raw cache
// key instead of (arch, partition). The fleet's peer-fill endpoint
// (GET /v1/cache/{key}) uses it: the asking worker already computed the
// key, and shipping 32 bytes beats re-shipping (and re-parsing) the
// whole spec just to recompute the same hash.
func LookupComparisonByKey(key rescache.Key) (*Comparison, bool) {
	if !cachingEnabled.Load() {
		return nil, false
	}
	v, ok := comparisonCache.Get(key)
	if !ok {
		return nil, false
	}
	return v.(compareOutcome).cmp, true
}

// NoteComparisonPeerFill records that a local comparison-cache miss was
// answered by a fleet peer (per-source accounting on the "rescache"
// expvar; peer fills never count as local hits).
func NoteComparisonPeerFill() { comparisonCache.NotePeerFill() }

// ComparisonCacheStats reports the comparison cache's cumulative
// hit/miss/eviction counters (also published under the "rescache"
// expvar).
func ComparisonCacheStats() (hits, misses, evictions int64) {
	return comparisonCache.Stats()
}
