package cds

// Tests for the hardened comparison pipeline: one scheduler failing —
// with a typed error or an outright panic — must not lose the other
// schedulers' results, and cancellation must surface as the taxonomy's
// ErrCanceled class.

import (
	"context"
	"errors"
	"testing"

	"cds/internal/app"
	"cds/internal/arch"
	"cds/internal/conc"
	"cds/internal/core"
	"cds/internal/scherr"
	"cds/internal/workloads"
)

// brokenScheduler fails or panics on demand, standing in for a buggy
// scheduling policy.
type brokenScheduler struct {
	err       error
	panicWith any
}

func (b brokenScheduler) Name() string { return "broken" }

func (b brokenScheduler) Schedule(pa arch.Params, part *app.Partition) (*core.Schedule, error) {
	return b.ScheduleCtx(context.Background(), pa, part)
}

func (b brokenScheduler) ScheduleCtx(ctx context.Context, pa arch.Params, part *app.Partition) (*core.Schedule, error) {
	if b.panicWith != nil {
		panic(b.panicWith)
	}
	return nil, b.err
}

// overrideKind substitutes the broken scheduler for exactly one kind.
func overrideKind(k SchedulerKind, sched core.Scheduler) func(SchedulerKind) core.Scheduler {
	return func(got SchedulerKind) core.Scheduler {
		if got == k {
			return sched
		}
		return nil
	}
}

// TestCompareAllSurvivesCDSError pins graceful degradation on a typed
// failure: CDS failing leaves Basic and DS results intact, CDSErr typed
// and the summary error equal to it.
func TestCompareAllSurvivesCDSError(t *testing.T) {
	e := workloads.MPEG()
	boom := scherr.Sentinel(scherr.ErrCapacity, "synthetic CDS failure")
	cmp, err := compareAll(context.Background(), e.Arch, e.Part,
		overrideKind(CDS, brokenScheduler{err: boom}))
	if err == nil {
		t.Fatal("CompareAll hid the CDS failure")
	}
	if cmp == nil {
		t.Fatal("no partial comparison returned")
	}
	if cmp.Basic == nil || cmp.DS == nil {
		t.Fatalf("survivor results lost: basic=%v ds=%v", cmp.Basic != nil, cmp.DS != nil)
	}
	if cmp.CDS != nil {
		t.Error("failed scheduler still has a result")
	}
	if !errors.Is(cmp.CDSErr, scherr.ErrCapacity) || !errors.Is(cmp.CDSErr, boom) {
		t.Fatalf("CDSErr = %v, lost its taxonomy class", cmp.CDSErr)
	}
	if cmp.DSErr != nil || cmp.BasicErr != nil {
		t.Fatalf("failure leaked into sibling error fields: %v / %v", cmp.DSErr, cmp.BasicErr)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("summary error %v does not carry the CDS failure", err)
	}
	// The survivors' numbers are still the real ones.
	ref, rerr := Run(DS, e.Arch, e.Part)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if cmp.DS.Timing.TotalCycles != ref.Timing.TotalCycles {
		t.Error("DS survivor timing diverged from a clean run")
	}
	if cmp.ImprovementDS <= 0 {
		t.Error("DS improvement not computed for the survivor")
	}
}

// TestCompareAllSurvivesPanic pins panic containment end to end: a
// scheduler that panics surfaces as a *conc.PanicError with a stack in
// its own error slot, while the siblings complete normally.
func TestCompareAllSurvivesPanic(t *testing.T) {
	e := workloads.MPEG()
	for _, kind := range []SchedulerKind{DS, CDS} {
		cmp, err := compareAll(context.Background(), e.Arch, e.Part,
			overrideKind(kind, brokenScheduler{panicWith: "scheduler bug"}))
		if err == nil || cmp == nil {
			t.Fatalf("%s panic: err=%v cmp=%v", kind, err, cmp != nil)
		}
		perKind := cmp.DSErr
		survivor := cmp.CDS
		if kind == CDS {
			perKind, survivor = cmp.CDSErr, cmp.DS
		}
		var pe *conc.PanicError
		if !errors.As(perKind, &pe) {
			t.Fatalf("%s panic: per-scheduler error %v is not a *conc.PanicError", kind, perKind)
		}
		if pe.Value != "scheduler bug" || len(pe.Stack) == 0 {
			t.Fatalf("%s panic: PanicError lacks value/stack: %+v", kind, pe)
		}
		if cmp.Basic == nil || survivor == nil {
			t.Fatalf("%s panic killed sibling schedulers", kind)
		}
		if !errors.As(err, &pe) {
			t.Fatalf("%s panic: summary error %v hides the panic", kind, err)
		}
	}
}

// TestCompareAllBasicPanicStaysInBasicErr: a Basic crash must not be
// confused with the paper's memory-floor infeasibility semantics — the
// panic is typed, so callers can tell "FB too small" from "bug".
func TestCompareAllBasicPanicStaysInBasicErr(t *testing.T) {
	e := workloads.MPEG()
	cmp, err := compareAll(context.Background(), e.Arch, e.Part,
		overrideKind(Basic, brokenScheduler{panicWith: "basic bug"}))
	if err != nil {
		t.Fatalf("a Basic failure is a result, not a comparison error: %v", err)
	}
	var pe *conc.PanicError
	if !errors.As(cmp.BasicErr, &pe) {
		t.Fatalf("BasicErr = %v, want the contained panic", cmp.BasicErr)
	}
	if errors.Is(cmp.BasicErr, scherr.ErrInfeasible) {
		t.Fatal("a panic must not read as infeasibility")
	}
	if cmp.DS == nil || cmp.CDS == nil {
		t.Fatal("Basic panic killed DS/CDS runs")
	}
}

// TestRunCtxCancellation pins the facade's cancellation contract.
func TestRunCtxCancellation(t *testing.T) {
	e := workloads.MPEG()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, CDS, e.Arch, e.Part); !errors.Is(err, scherr.ErrCanceled) {
		t.Fatalf("RunCtx on dead context: %v, want ErrCanceled", err)
	}
	if cmp, err := CompareAllCtx(ctx, e.Arch, e.Part); !errors.Is(err, scherr.ErrCanceled) {
		t.Fatalf("CompareAllCtx on dead context: %v (cmp=%v), want ErrCanceled", err, cmp != nil)
	}
}

// TestRunVerifiedOnSeedWorkloads: the verifying entry point accepts all
// clean schedules (the verifier's negative cases live in internal/verify).
func TestRunVerifiedOnSeedWorkloads(t *testing.T) {
	e := workloads.MPEG()
	for _, kind := range []SchedulerKind{Basic, DS, CDS} {
		res, err := RunVerified(context.Background(), kind, e.Arch, e.Part)
		if err != nil || res == nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
}
