package cds

import (
	"context"

	"cds/internal/scherr"
	"cds/internal/sim"
	"cds/internal/trace"
)

// Re-exported tracing types: the recorded execution timeline and its
// derived analytics (see internal/trace for the exporters).
type (
	// Timeline is the cycle-stamped record of one simulated execution:
	// every DMA transfer, compute interval and FB set switch.
	Timeline = trace.Timeline
	// TimelineAnalytics is the derived summary of a Timeline: resource
	// utilization, overlap efficiency and the critical-path
	// decomposition of the makespan.
	TimelineAnalytics = trace.Analytics
)

// AnalyzeTimeline derives per-resource utilization, overlap efficiency
// and the critical-path decomposition from a recorded timeline.
func AnalyzeTimeline(tl *Timeline) TimelineAnalytics { return trace.Analyze(tl) }

// RunTraced is RunCtx plus a recorded execution timeline. Tracing is
// observational: the traced simulation is the same walk Run uses, so
// the returned Result is identical to an untraced run's.
func RunTraced(ctx context.Context, kind SchedulerKind, pa Arch, part *Part) (*Result, *Timeline, error) {
	res, err := RunCtx(ctx, kind, pa, part)
	if err != nil {
		return nil, nil, err
	}
	_, tl, err := sim.Trace(res.Schedule)
	if err != nil {
		return nil, nil, err
	}
	return res, tl, nil
}

// TracedComparison is a Comparison plus the recorded timeline of every
// scheduler that produced a result.
type TracedComparison struct {
	*Comparison
	// Timelines holds one timeline per surviving scheduler, in
	// Basic, DS, CDS order (failed schedulers are skipped), labeled by
	// scheduler name. The first entry is the natural diff baseline.
	Timelines []*Timeline
}

// CompareAllTraced is CompareAllCtx plus recorded timelines for the
// surviving schedulers. The comparison itself still flows through the
// result cache — timelines are re-derived from the (deterministic)
// schedules, so a cache hit and a fresh computation trace identically.
// Like CompareAllCtx, a partial comparison is returned alongside the
// first DS/CDS failure.
func CompareAllTraced(ctx context.Context, pa Arch, part *Part) (*TracedComparison, error) {
	cmp, err := CompareAllCtx(ctx, pa, part)
	if cmp == nil {
		return nil, err
	}
	tc := &TracedComparison{Comparison: cmp}
	for _, res := range []*Result{cmp.Basic, cmp.DS, cmp.CDS} {
		if res == nil {
			continue
		}
		if cerr := scherr.FromContext(ctx); cerr != nil {
			return nil, cerr
		}
		_, tl, terr := sim.Trace(res.Schedule)
		if terr != nil {
			return nil, terr
		}
		tc.Timelines = append(tc.Timelines, tl)
	}
	return tc, err
}
