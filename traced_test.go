package cds

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"cds/internal/trace"
)

// TestRunTracedIdentity pins the facade-level conservativeness
// guarantee: a traced run returns the same Result as an untraced run,
// plus a timeline whose busy totals match the timing report.
func TestRunTracedIdentity(t *testing.T) {
	part := facadePartition(t)
	pa := facadeArch()
	for _, kind := range []SchedulerKind{Basic, DS, CDS} {
		plain, err := Run(kind, pa, part)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		traced, tl, err := RunTraced(context.Background(), kind, pa, part)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if !reflect.DeepEqual(plain.Timing, traced.Timing) {
			t.Errorf("%s: traced timing differs:\nplain:  %+v\ntraced: %+v",
				kind, plain.Timing, traced.Timing)
		}
		if tl.Makespan != plain.Timing.TotalCycles {
			t.Errorf("%s: timeline makespan %d != total %d", kind, tl.Makespan, plain.Timing.TotalCycles)
		}
		if got := tl.Busy(trace.DMA); got != plain.Timing.DMABusy() {
			t.Errorf("%s: timeline DMA busy %d != %d", kind, got, plain.Timing.DMABusy())
		}
		a := AnalyzeTimeline(tl)
		if a.Makespan != tl.Makespan || a.Label != kind.String() {
			t.Errorf("%s: analytics %q/%d for timeline %q/%d", kind, a.Label, a.Makespan, tl.Label, tl.Makespan)
		}
	}
}

func TestCompareAllTraced(t *testing.T) {
	part := facadePartition(t)
	pa := facadeArch()
	tc, err := CompareAllTraced(context.Background(), pa, part)
	if err != nil {
		t.Fatal(err)
	}
	if len(tc.Timelines) != 3 {
		t.Fatalf("%d timelines, want 3", len(tc.Timelines))
	}
	wantLabels := []string{"basic", "ds", "cds"}
	for i, tl := range tc.Timelines {
		if tl.Label != wantLabels[i] {
			t.Errorf("timeline %d labeled %q, want %q", i, tl.Label, wantLabels[i])
		}
	}
	if tc.Timelines[0].Makespan != tc.Basic.Timing.TotalCycles ||
		tc.Timelines[2].Makespan != tc.CDS.Timing.TotalCycles {
		t.Error("timeline makespans do not match comparison timings")
	}
	// The traced comparison flows through the result cache; a second
	// call (cache hit) must trace identically.
	tc2, err := CompareAllTraced(context.Background(), pa, part)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tc.Timelines {
		if !reflect.DeepEqual(tc.Timelines[i], tc2.Timelines[i]) {
			t.Errorf("timeline %d differs between cached and fresh comparison", i)
		}
	}

	// The timelines render through every exporter.
	var b strings.Builder
	if err := trace.WriteChrome(&b, tc.Timelines...); err != nil {
		t.Fatal(err)
	}
	if _, err := trace.ValidateChrome(strings.NewReader(b.String())); err != nil {
		t.Errorf("comparison trace invalid: %v", err)
	}
	b.Reset()
	if err := trace.WriteSVG(&b, tc.Timelines...); err != nil {
		t.Fatal(err)
	}
	b.Reset()
	trace.WriteDiff(&b, tc.Timelines...)
	for _, want := range wantLabels {
		if !strings.Contains(b.String(), want) {
			t.Errorf("diff missing %q", want)
		}
	}
}

func TestCompareAllTracedCanceled(t *testing.T) {
	part := facadePartition(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CompareAllTraced(ctx, facadeArch(), part); err == nil {
		t.Error("canceled context accepted")
	}
}
